package snapshot

import (
	"bytes"
	"context"
	"testing"

	"memorydb/internal/clock"
	"memorydb/internal/engine"
	"memorydb/internal/s3"
	"memorydb/internal/txlog"
)

// buildSegmentedShard is buildLoggedShard with a small segment threshold so
// trims have sealed segments to drop.
func buildSegmentedShard(t *testing.T, n, segEntries int) (*txlog.Log, *engine.Engine) {
	t.Helper()
	svc := txlog.NewService(txlog.Config{SegmentEntries: segEntries})
	log, _ := svc.CreateLog("s1")
	e := engine.New(clock.NewReal())
	after := txlog.ZeroID
	ctx := context.Background()
	for i := 0; i < n; i++ {
		res := e.Exec([][]byte{[]byte("SET"), []byte("k" + string(rune('a'+i%26))), []byte{byte('0' + i%10)}})
		id, err := log.Append(ctx, after, txlog.Entry{Type: txlog.EntryData, Payload: engine.EncodeRecord(res.Effects)})
		if err != nil {
			t.Fatal(err)
		}
		after = id
	}
	return log, e
}

func TestTrimmerTrimsBehindVerifiedSnapshot(t *testing.T) {
	log, _ := buildSegmentedShard(t, 40, 8)
	mgr := NewManager(s3.New(), "snaps")
	ob := &Offbox{Manager: mgr, EngineVersion: 2}
	ctx := context.Background()
	meta, err := ob.Run(ctx, "s1", log)
	if err != nil {
		t.Fatal(err)
	}

	tr := &Trimmer{Manager: mgr}
	tr.AddShard(Shard{ShardID: "s1", Log: log})
	tr.Tick()
	trimmed, passes := tr.Stats()
	if trimmed == 0 || passes != 1 {
		t.Fatalf("stats = trimmed %d, passes %d; want trims after a covering snapshot", trimmed, passes)
	}
	base := log.TrimBase()
	if base.Seq == 0 || base.Seq > meta.LogPos.Seq {
		t.Fatalf("trim base %v outside (0, snapshot pos %v]", base, meta.LogPos)
	}
	// Trim-safety invariant: the snapshot position's checksum must remain
	// addressable (resync and verification both anchor on it), and the
	// retained suffix must still read end to end.
	if _, err := log.ChecksumAt(base); err != nil {
		t.Fatalf("ChecksumAt(trim base): %v", err)
	}
	r := log.NewReader(base)
	for {
		_, ok, err := r.TryNext()
		if err != nil {
			t.Fatalf("reading retained suffix: %v", err)
		}
		if !ok {
			break
		}
	}
	if r.Position() != log.CommittedTail() {
		t.Fatalf("suffix read stopped at %v, tail %v", r.Position(), log.CommittedTail())
	}

	// Unchanged snapshot store: the memoized position skips the verified
	// pass entirely.
	tr.Tick()
	if _, passes = tr.Stats(); passes != 1 {
		t.Fatalf("tick without a newer snapshot ran %d verification passes", passes)
	}
}

func TestTrimmerRefusesUnverifiedSnapshot(t *testing.T) {
	log, _ := buildSegmentedShard(t, 24, 8)
	mgr := NewManager(s3.New(), "snaps")
	ob := &Offbox{Manager: mgr, EngineVersion: 2}
	ctx := context.Background()
	good, err := ob.Run(ctx, "s1", log)
	if err != nil {
		t.Fatal(err)
	}

	// Grow the log, then plant a corrupt "snapshot" at the new tail — the
	// newest version by position, but one that can never serve a restore.
	e2 := engine.New(clock.NewReal())
	after := log.CommittedTail()
	for i := 0; i < 16; i++ {
		res := e2.Exec([][]byte{[]byte("SET"), []byte("x"), []byte("y")})
		id, err := log.Append(ctx, after, txlog.Entry{Type: txlog.EntryData, Payload: engine.EncodeRecord(res.Effects)})
		if err != nil {
			t.Fatal(err)
		}
		after = id
	}
	var buf bytes.Buffer
	if err := Write(&buf, e2.DB(), Meta{ShardID: "s1", LogPos: log.CommittedTail()}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xff
	if err := mgr.SaveRaw("s1", log.CommittedTail(), data); err != nil {
		t.Fatal(err)
	}

	tr := &Trimmer{Manager: mgr}
	tr.AddShard(Shard{ShardID: "s1", Log: log})
	tr.Tick()
	// The corrupt snapshot must not authorize trimming past the last good
	// one: everything above good.LogPos stays readable.
	if base := log.TrimBase(); base.Seq > good.LogPos.Seq {
		t.Fatalf("trimmer advanced base to %v past last verified snapshot %v", base, good.LogPos)
	}
	if _, ok := log.Get(txlog.EntryID{Seq: good.LogPos.Seq + 1}); !ok {
		t.Fatal("entries above the last verified snapshot were trimmed")
	}
}
