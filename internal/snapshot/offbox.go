package snapshot

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"memorydb/internal/clock"
	"memorydb/internal/engine"
	"memorydb/internal/faultpoint"
	"memorydb/internal/obs"
	"memorydb/internal/retry"
	"memorydb/internal/txlog"
)

// Offbox creates snapshots on ephemeral clusters that never touch the
// customer cluster (paper §4.2.2). An off-box replica restores the
// shard's latest snapshot from S3, replays the transaction log up to the
// tail recorded at creation time, stops, and dumps a fresh snapshot —
// guaranteed fresher than the previous one, produced with zero load on
// customer nodes.
type Offbox struct {
	Manager *Manager
	Clock   clock.Clock
	// EngineVersion stamps produced snapshots. During mixed-version
	// upgrades the control plane pins this to the *oldest* version running
	// in the cluster (§7.1) so every node can restore from it.
	EngineVersion uint32
	// Retry shapes the backoff applied to the S3 restore and upload legs,
	// so a brief storage blip degrades one run's latency instead of
	// failing it. The zero value uses the library defaults.
	Retry retry.Policy
	// Faults, when set, injects crash faults into the snapshot pipeline:
	// Crash aborts the run (the ephemeral cluster died), Corrupt at the
	// build site flips a byte in the serialized image (silent bit rot),
	// Corrupt at the upload site truncates it (torn write). Production
	// leaves it nil.
	Faults *faultpoint.Registry
	// Obs, when set, records snapshot_build (restore+replay+serialize)
	// and snapshot_upload (S3 put) durations into named histograms.
	Obs *obs.Metrics
}

// ErrRunCrashed reports that a fault schedule killed the ephemeral
// snapshot cluster mid-run; no snapshot was (intentionally) produced.
var ErrRunCrashed = errors.New("offbox: snapshot run crashed by fault schedule")

// Run performs one off-box snapshot of shardID against log, returning the
// meta of the snapshot it produced. Verification (restore rehearsal) is a
// separate step; see Verify.
func (o *Offbox) Run(ctx context.Context, shardID string, log *txlog.Log) (Meta, error) {
	clk := o.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	// All S3 legs go through the retrying wrapper: restore and upload are
	// idempotent, so a transient storage failure costs backoff time, not
	// the whole run.
	pol := o.Retry
	if pol.Clock == nil {
		pol.Clock = clk
	}
	mgr := o.Manager.WithRetries(pol)
	buildStart := obs.Now()
	// (1) Record the tail position at creation time.
	target := log.CommittedTail()

	// Bootstrap exactly like a recovering customer replica.
	eng := engine.New(clk)
	from := txlog.ZeroID
	if db, meta, ok, err := mgr.Latest(shardID); err != nil {
		return Meta{}, fmt.Errorf("offbox: loading base snapshot: %w", err)
	} else if ok {
		eng.ResetDB(db)
		from = meta.LogPos
	}
	// Replay the log up to the recorded tail, then stop: a static data
	// view fresher than any previous snapshot.
	if err := ReplayRange(ctx, log, eng, from, target); err != nil {
		return Meta{}, fmt.Errorf("offbox: replay: %w", err)
	}

	sum, err := log.ChecksumAt(target)
	if err != nil {
		return Meta{}, fmt.Errorf("offbox: checksum at %v: %w", target, err)
	}
	meta := Meta{
		ShardID:       shardID,
		EngineVersion: o.EngineVersion,
		LogPos:        target,
		LogChecksum:   sum,
	}
	// (2) Dump the data view into a new snapshot and upload it.
	var buf bytes.Buffer
	if err := Write(&buf, eng.DB(), meta); err != nil {
		return Meta{}, fmt.Errorf("offbox: serialize: %w", err)
	}
	data := buf.Bytes()
	if o.Obs != nil {
		o.Obs.Named("snapshot_build").ObserveNanos(obs.Now() - buildStart)
	}
	uploadStart := obs.Now()
	// Crash sites across the dump-and-upload leg. Corrupt at the build
	// site is silent bit rot in the serialized image; at the upload site
	// it is a torn write (§7.2.1) — both upload bytes the checksum gates
	// must later reject.
	switch d := o.Faults.Hit(faultpoint.SiteSnapBuild); d.Kind {
	case faultpoint.Crash:
		return Meta{}, ErrRunCrashed
	case faultpoint.Error:
		return Meta{}, errors.New("offbox: serialize: injected fault")
	case faultpoint.Delay:
		clk.Sleep(d.Delay)
	case faultpoint.Corrupt:
		data = o.Faults.FlipByte(data)
	}
	switch d := o.Faults.Hit(faultpoint.SiteSnapUpload); d.Kind {
	case faultpoint.Crash:
		return Meta{}, ErrRunCrashed
	case faultpoint.Error:
		return Meta{}, errors.New("offbox: upload: injected fault")
	case faultpoint.Delay:
		clk.Sleep(d.Delay)
	case faultpoint.Corrupt:
		data = o.Faults.TornWrite(data)
	}
	switch d := o.Faults.Hit(faultpoint.SiteS3Put); d.Kind {
	case faultpoint.Crash:
		return Meta{}, ErrRunCrashed
	case faultpoint.Error:
		return Meta{}, errors.New("offbox: s3 put: injected fault")
	case faultpoint.Delay:
		clk.Sleep(d.Delay)
	}
	if err := mgr.SaveRaw(shardID, target, data); err != nil {
		return Meta{}, fmt.Errorf("offbox: upload: %w", err)
	}
	if o.Obs != nil {
		o.Obs.Named("snapshot_upload").ObserveNanos(obs.Now() - uploadStart)
	}
	return meta, nil
}

// ReplayRange applies committed data entries in (from, to] to eng.
// Checksum, lease and other control entries are skipped — they carry no
// keyspace mutations.
func ReplayRange(ctx context.Context, log *txlog.Log, eng *engine.Engine, from, to txlog.EntryID) error {
	if !from.Less(to) {
		return nil
	}
	r := log.NewReader(from)
	for r.Position().Less(to) {
		e, err := r.Next(ctx)
		if err != nil {
			return err
		}
		if e.ID.Seq > to.Seq {
			return fmt.Errorf("snapshot: reader overran target %v at %v", to, e.ID)
		}
		if e.Type != txlog.EntryData {
			continue
		}
		if err := eng.Apply(e.Payload); err != nil {
			return err
		}
	}
	return nil
}
