package txlog

import (
	"context"
	"testing"
	"time"

	"memorydb/internal/netsim"
)

// TestAZAckLatencyHistograms checks the per-AZ observability surface: each
// zone's served-ack histogram grows with appends and reflects the
// configured commit latency, so CLUSTER INFO can report per-zone p50/p99.
func TestAZAckLatencyHistograms(t *testing.T) {
	svc, l := newFaultService(t, Config{CommitLatency: netsim.Fixed(time.Millisecond)})

	after := ZeroID
	const appends = 5
	for i := 0; i < appends; i++ {
		p, err := l.StartAppend(after, Entry{Type: EntryData, Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		id, err := p.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		after = id
	}

	azs := svc.AZs()
	if len(azs) != 3 {
		t.Fatalf("AZs = %d, want 3", len(azs))
	}
	// Quorum is 2-of-3, so across 3 zones at least 2×appends acks must be
	// served by Wait time; every served ack lands in its zone's histogram.
	var total uint64
	for _, az := range azs {
		h := az.AckLatency()
		total += h.Count()
		if h.Count() == 0 {
			continue
		}
		if p50 := h.Percentile(0.50); p50 < time.Millisecond {
			t.Errorf("%s ack p50 = %v, want >= 1ms commit latency", az.Name(), p50)
		}
		served, _ := az.Acks()
		if uint64(served) != h.Count() {
			t.Errorf("%s: served=%d but histogram count=%d", az.Name(), served, h.Count())
		}
	}
	if total < 2*appends {
		t.Fatalf("served-ack observations = %d, want >= %d", total, 2*appends)
	}
}
