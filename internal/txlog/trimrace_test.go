package txlog

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"memorydb/internal/clock"
)

// Property (trim vs. reader race, run under -race by the tier-1 gate): a
// reader racing concurrent Trim calls either observes an entry with its
// exact written payload, or gets ErrTrimmed / ErrCorruptSegment — never
// a torn, reordered, or wrong payload. Payloads are derived from the
// sequence number, so any mix-up is detectable on read.
func TestTrimConcurrentReaderProperty(t *testing.T) {
	const (
		entries = 1500
		readers = 4
	)
	svc := NewService(Config{Clock: clock.NewReal(), SegmentEntries: 16})
	l, err := svc.CreateLog("race")
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Appender: payload v-<seq> for every entry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		after := ZeroID
		for i := 0; i < entries; i++ {
			p, err := l.StartAppend(after, Entry{
				Type:    EntryData,
				Payload: []byte(fmt.Sprintf("v-%d", after.Seq+1)),
			})
			if err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			after = p.ID()
		}
	}()

	// Trimmer: repeatedly trims to a random committed position, like a
	// coordinator fenced by ever-advancing snapshots. Runs until the
	// appender and every reader finished.
	trimmerDone := make(chan struct{})
	go func() {
		defer close(trimmerDone)
		rng := rand.New(rand.NewSource(7))
		for !stop.Load() {
			tail := l.CommittedTail()
			if tail.Seq > 0 {
				l.Trim(EntryID{Seq: rng.Uint64() % (tail.Seq + 1)})
			}
		}
	}()

	// Readers: tail from zero; on ErrTrimmed re-bootstrap at the current
	// trim base (as a snapshot restore would) and keep going.
	var verified atomic.Int64
	var rebootstraps atomic.Int64
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := l.NewReader(ZeroID)
			for {
				e, ok, err := r.TryNext()
				if err != nil {
					if errors.Is(err, ErrTrimmed) {
						rebootstraps.Add(1)
						r = l.NewReader(l.TrimBase())
						continue
					}
					if errors.Is(err, ErrUnavailable) {
						continue
					}
					t.Errorf("reader: %v", err)
					return
				}
				if !ok {
					// Exit on the reader's own progress, not the global
					// tail: !ok means pos >= committed, so pos==entries
					// proves this reader consumed (or re-bootstrapped
					// past) everything. The trim base can never pass the
					// final partial segment, so every reader verifies at
					// least the live suffix before exiting.
					if r.Position().Seq >= entries {
						return
					}
					continue
				}
				if want := fmt.Sprintf("v-%d", e.ID.Seq); string(e.Payload) != want {
					t.Errorf("entry %d: payload %q, want %q", e.ID.Seq, e.Payload, want)
					return
				}
				verified.Add(1)
			}
		}()
	}

	wg.Wait()
	stop.Store(true)
	<-trimmerDone

	if verified.Load() == 0 {
		t.Fatalf("readers verified no entries: tail=%v base=%v stats=%+v",
			l.CommittedTail(), l.TrimBase(), l.SegmentStats())
	}
	t.Logf("verified %d reads, %d trim re-bootstraps, %d segments trimmed",
		verified.Load(), rebootstraps.Load(), l.SegmentStats().Trimmed)
}
