// Package txlog implements the internal durable transaction log service
// MemoryDB offloads durability to (paper §3). The service hosts one log per
// shard. Each log offers the conditional-append API the paper builds
// leader election and fencing on: every entry has a unique identifier and
// an append must name the identifier of the entry it intends to follow;
// appends are acknowledged only once durably committed to a quorum of
// simulated Availability Zones.
//
// The real AWS service is an existing, battle-tested internally replicated
// system; MemoryDB consumes only its API surface. We model its interior
// just deeply enough to reproduce its fault envelope: every log is copied
// to AZCount simulated zone replicas (AZReplica), each with its own
// latency draw and independently injectable faults (down, flaky, slow).
// An append is accepted only when a quorum of zones acknowledges it —
// below quorum the service is unavailable and appends/reads fail with
// ErrUnavailable — and an accepted entry always commits after the quorum
// latency (internal reliability). Client-boundary failures (partitions,
// whole-service outages) are injected on top, which is exactly where
// MemoryDB observes them.
package txlog

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"sort"
	"sync"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/faultpoint"
	"memorydb/internal/netsim"
	"memorydb/internal/trace"
)

// EntryID uniquely identifies a log entry. Seq 0 is the sentinel "before
// the first entry": appending with After == ZeroID targets an empty log.
type EntryID struct {
	Seq uint64
}

// ZeroID is the position before the first entry.
var ZeroID = EntryID{}

// Less orders entry IDs.
func (id EntryID) Less(o EntryID) bool { return id.Seq < o.Seq }

// String renders the ID for logs and errors.
func (id EntryID) String() string { return fmt.Sprintf("e%d", id.Seq) }

// EntryType tags the meaning of an entry's payload.
type EntryType uint8

// Entry types used by MemoryDB atop the log.
const (
	// EntryData carries a chunk of the intercepted replication stream
	// (RESP-encoded effect commands).
	EntryData EntryType = iota
	// EntryLeadership is a leader-claim record (§4.1.1).
	EntryLeadership
	// EntryLease is a periodic lease renewal / heartbeat (§4.1.3, §4.2).
	EntryLease
	// EntryChecksum is an injected running checksum of the log prefix,
	// used by snapshot verification (§7.2.1).
	EntryChecksum
	// EntrySlot carries 2-phase-commit slot ownership messages (§5.2).
	EntrySlot
	// EntryControl carries other control-plane messages.
	EntryControl
)

// String names the entry type.
func (t EntryType) String() string {
	switch t {
	case EntryData:
		return "data"
	case EntryLeadership:
		return "leadership"
	case EntryLease:
		return "lease"
	case EntryChecksum:
		return "checksum"
	case EntrySlot:
		return "slot"
	case EntryControl:
		return "control"
	}
	return "unknown"
}

// Entry is one committed log record.
type Entry struct {
	ID   EntryID
	Type EntryType
	// Epoch is the leadership epoch of the writer. Leadership entries
	// carry the epoch being claimed.
	Epoch uint64
	// EngineVersion tags which engine version produced the record, for
	// the upgrade protection mechanism (§7.1).
	EngineVersion uint32
	// Records counts the logical replication records coalesced into this
	// data entry by group commit (0 is treated as 1). Metadata only: the
	// payload is self-framing, but the count lets the log keep
	// records-per-entry statistics without parsing payloads.
	Records uint32
	// Watermark is the writer's committed (quorum-acked) watermark at the
	// moment this entry was appended: every sequence number <= Watermark
	// had already been acknowledged to clients. Tailing replicas read it
	// to continuously learn how far behind the primary's ack frontier
	// they are (bounded-staleness accounting); it is always < ID.Seq, so
	// it cannot by itself prove a replica is caught up "now" — consistent
	// reads capture ConsistentTail from the log service instead.
	Watermark uint64
	Payload   []byte
	// TraceID / TraceSpan carry the causal-tracing context of the sampled
	// command whose group-commit batch produced this entry (0 = not
	// sampled). TraceSpan names the batch's append span, so the per-AZ
	// quorum acks here and the tailer applies on replica nodes attach
	// under it. Advisory metadata: deliberately outside the record CRC,
	// so a trace-instrumented writer and a plain one produce
	// byte-identical durable records.
	TraceID   uint64
	TraceSpan uint64
	// acks is the number of AZ replicas that acknowledged this entry's
	// append (set by StartAppend; drives the AZCopies metric).
	acks uint8
}

// RecordCount returns the number of logical records the entry carries.
func (e Entry) RecordCount() int {
	if e.Records == 0 {
		return 1
	}
	return int(e.Records)
}

// Errors returned by the log. They split into two classes that clients
// MUST treat differently (§4.1.3):
//
//   - Transient (retryable): ErrUnavailable. The service could not be
//     reached or could not assemble a quorum right now; the caller's
//     position in the log is unchanged, so retrying the identical call is
//     safe and correct. IsTransient reports this class.
//   - Fatal: ErrConditionFailed (the fencing primitive — another writer
//     owns the tail; retrying can never succeed and the caller must
//     demote), ErrNoSuchLog, ErrTrimmed. Retrying is wrong.
var (
	// ErrConditionFailed reports that After did not name the current tail
	// — another writer appended first. This is the fencing primitive.
	ErrConditionFailed = errors.New("txlog: conditional append failed: not at tail")
	// ErrUnavailable reports that the caller cannot reach the service
	// (partition, injected outage, or fewer than quorum healthy AZs).
	ErrUnavailable = errors.New("txlog: service unavailable")
	// ErrNoSuchLog reports an unknown shard log.
	ErrNoSuchLog = errors.New("txlog: no such log")
	// ErrTrimmed reports a read from a position older than the trim point.
	ErrTrimmed = errors.New("txlog: position trimmed")
	// ErrCorruptSegment reports a read from a quarantined segment: a
	// record in it failed CRC verification, so nothing in the segment can
	// be trusted. Fatal, like ErrTrimmed — the reader must re-bootstrap
	// from a snapshot whose position covers the quarantined range; if no
	// snapshot covers it, recovery fails loudly rather than replaying
	// corrupt data.
	ErrCorruptSegment = errors.New("txlog: segment quarantined (corrupt record)")
)

// IsTransient reports whether err is a retryable service condition (the
// caller's log position is unchanged and the identical call may succeed
// later). Fencing and trim errors are fatal: retrying cannot help and the
// caller must change state (demote, restore from snapshot) instead.
func IsTransient(err error) bool {
	return errors.Is(err, ErrUnavailable) ||
		errors.Is(err, context.DeadlineExceeded)
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// Config parameterizes the service.
type Config struct {
	// Clock drives latency simulation. Defaults to the wall clock.
	Clock clock.Clock
	// CommitLatency is the per-AZ acknowledgement latency model: each zone
	// replica draws independently and an append commits at the Quorum-th
	// fastest ack. Defaults to zero.
	CommitLatency netsim.LatencyModel
	// SlowExtra is the additional latency a zone marked slow pays per
	// acknowledgement. Defaults to a fixed 2ms.
	SlowExtra netsim.LatencyModel
	// AZCount is the number of availability zone replicas entries are
	// copied to. Defaults to 3.
	AZCount int
	// Quorum is how many AZ acknowledgements an append needs. Defaults to
	// a majority of AZCount (2 of 3).
	Quorum int
	// Seed makes flaky-AZ fault draws deterministic. Zero is a valid seed.
	Seed int64
	// SegmentEntries / SegmentBytes are the active-segment rotation
	// thresholds: crossing either closes the segment (it seals once fully
	// committed). Defaults: 1024 entries, 1 MiB of payload.
	SegmentEntries int
	SegmentBytes   int
	// Faults is the registry for the txlog.* fault sites (seal, trim,
	// corrupt_record). Defaults to a fresh registry under Seed.
	Faults *faultpoint.Registry
	// AlarmFn, when set, is invoked for quarantine events (a segment
	// failed CRC verification). It may be called with the log lock held
	// and must not call back into the log.
	AlarmFn func(msg string)
	// Trace, when set, records per-AZ acknowledgement spans for entries
	// stamped with a trace context (Entry.TraceID != 0).
	Trace *trace.Collector
	// Flight, when set, receives the service's segment-lifecycle events
	// (seal, trim, quarantine) on the cluster flight timeline.
	Flight *trace.Flight
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.CommitLatency == nil {
		c.CommitLatency = netsim.Zero{}
	}
	if c.SlowExtra == nil {
		c.SlowExtra = netsim.Fixed(2 * time.Millisecond)
	}
	if c.AZCount == 0 {
		c.AZCount = 3
	}
	if c.Quorum == 0 {
		c.Quorum = c.AZCount/2 + 1
	}
	if c.SegmentEntries == 0 {
		c.SegmentEntries = 1024
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.Faults == nil {
		c.Faults = faultpoint.New(c.Seed)
	}
	return c
}

// Service hosts one transaction log per shard, replicated across a fixed
// set of simulated availability zones shared by all logs (zones are a
// property of the service deployment, not of one shard).
type Service struct {
	cfg  Config
	azs  []*AZReplica
	mu   sync.Mutex
	logs map[string]*Log
	down netsim.Flag // whole-service outage injection
}

// NewService returns an empty log service.
func NewService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{cfg: cfg, logs: make(map[string]*Log)}
	for i := 0; i < cfg.AZCount; i++ {
		s.azs = append(s.azs, newAZReplica(i, cfg.CommitLatency, cfg.SlowExtra, cfg.Seed+int64(i)))
	}
	return s
}

// SetUnavailable injects (or clears) a whole-service outage.
func (s *Service) SetUnavailable(down bool) { s.down.Set(down) }

// Flight returns the service's flight recorder ring (nil unless
// configured) so harnesses can merge it into the cluster timeline.
func (s *Service) Flight() *trace.Flight { return s.cfg.Flight }

// AZ returns the i-th zone replica for fault injection (0-based).
func (s *Service) AZ(i int) *AZReplica { return s.azs[i] }

// AZs returns all zone replicas.
func (s *Service) AZs() []*AZReplica { return append([]*AZReplica(nil), s.azs...) }

// HealthyAZs counts zones not currently down (flaky/slow zones count as
// healthy — they still serve, just unreliably or slowly).
func (s *Service) HealthyAZs() int {
	n := 0
	for _, az := range s.azs {
		if !az.Down() {
			n++
		}
	}
	return n
}

// Quorum returns the acknowledgement quorum appends must reach.
func (s *Service) Quorum() int { return s.cfg.Quorum }

// noteSeal records one sealed segment against every zone replica: an up
// zone stores its copy (first catching up on any segments it missed
// while down — the segment-granular background resync), a down zone
// falls one whole segment further behind.
func (s *Service) noteSeal() {
	for _, az := range s.azs {
		az.noteSeal()
	}
}

// Degraded reports whether the service is running below full replication
// (at least one zone down) while still meeting quorum.
func (s *Service) Degraded() bool {
	h := s.HealthyAZs()
	return h < s.cfg.AZCount && h >= s.cfg.Quorum
}

// readErr reports whether committed entries can currently be served to
// readers: a whole-service outage or a below-quorum zone set makes reads
// fail transiently (the data is safe; the service just cannot serve it).
func (s *Service) readErr() error {
	if s.down.On() || s.HealthyAZs() < s.cfg.Quorum {
		return ErrUnavailable
	}
	return nil
}

// azAck is one zone's acknowledgement of an append: which zone, and
// its drawn latency. The slice quorumAck returns is what per-AZ ack
// spans are built from when the entry is traced.
type azAck struct {
	az  int
	lat time.Duration
}

// quorumAck samples one append across the zone replicas: every zone draws
// an acknowledgement (or drops it — down/flaky), and the append commits at
// the Quorum-th fastest ack. ok=false means quorum was not reached and the
// append must be rejected as unavailable. acked is sorted fastest-first.
func (s *Service) quorumAck() (commit time.Duration, acked []azAck, ok bool) {
	for i, az := range s.azs {
		if d, ok := az.ack(); ok {
			acked = append(acked, azAck{az: i, lat: d})
		}
	}
	if len(acked) < s.cfg.Quorum {
		return 0, acked, false
	}
	sort.Slice(acked, func(i, j int) bool { return acked[i].lat < acked[j].lat })
	return acked[s.cfg.Quorum-1].lat, acked, true
}

// azNodeName labels a zone replica on span trees without allocating for
// the common zone counts.
var azNodeNames = [...]string{"az-0", "az-1", "az-2", "az-3", "az-4", "az-5", "az-6", "az-7"}

func azNodeName(i int) string {
	if i >= 0 && i < len(azNodeNames) {
		return azNodeNames[i]
	}
	return fmt.Sprintf("az-%d", i)
}

// CreateLog provisions the log for shardID. Creating an existing log is an
// error (resharding must use fresh shard IDs).
func (s *Service) CreateLog(shardID string) (*Log, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.logs[shardID]; ok {
		return nil, fmt.Errorf("txlog: log %q already exists", shardID)
	}
	l := newLog(s, shardID)
	s.logs[shardID] = l
	return l, nil
}

// Log returns the log for shardID.
func (s *Service) Log(shardID string) (*Log, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.logs[shardID]
	return l, ok
}

// DeleteLog destroys the log for shardID (end of a scale-in, §5.2).
func (s *Service) DeleteLog(shardID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.logs[shardID]
	if !ok {
		return ErrNoSuchLog
	}
	l.closeAll()
	delete(s.logs, shardID)
	return nil
}

// Log is one shard's transaction log: a chain of segments, the last of
// which is active and accepts appends (see segment.go for the segment
// lifecycle).
type Log struct {
	svc     *Service
	shardID string

	mu        sync.Mutex
	segs      []*segment // non-empty; ordered, contiguous; last = active
	assigned  uint64     // highest assigned Seq
	committed uint64     // highest committed Seq (visible watermark)
	// commitWake is closed and replaced each time the watermark advances.
	commitWake chan struct{}

	// Running checksum over committed data-entry payloads, chained CRC64.
	checksum     uint64
	baseChecksum uint64 // checksum at the trim point
	currentEpoch uint64
	azCopies     int64 // total (entry × AZ) durable copies, for tests/metrics
	stats        Stats

	// Segment lifecycle totals (surfaced via SegmentStats).
	sealedTotal      int64
	trimmedTotal     int64
	entriesTrimmed   int64
	quarantinedTotal int64
	sealsDeferred    int64
	trimsDeferred    int64
	tornTruncated    int64

	appendsFailed netsim.Flag
	closed        bool
}

// trimBase returns the trim point: the Seq at or before which reads fail
// with ErrTrimmed. Caller holds mu.
func (l *Log) trimBase() uint64 { return l.segs[0].base }

// active returns the append target segment. Caller holds mu.
func (l *Log) active() *segment { return l.segs[len(l.segs)-1] }

// segFor locates the segment containing seq via binary search over the
// per-segment min/max index. Caller holds mu.
func (l *Log) segFor(seq uint64) *segment {
	i := sort.Search(len(l.segs), func(i int) bool { return l.segs[i].maxSeq() >= seq })
	if i < len(l.segs) && l.segs[i].contains(seq) {
		return l.segs[i]
	}
	return nil
}

// Stats are cumulative per-log append counters, the observability surface
// for group commit: when the primary coalesces records, Records grows
// faster than DataAppends and the histogram shifts toward larger buckets.
type Stats struct {
	// Appends counts successful StartAppend calls of any entry type.
	Appends int64
	// DataAppends counts successful EntryData appends (quorum round-trips
	// spent on the replication stream).
	DataAppends int64
	// Records counts logical replication records across all data appends;
	// Records/DataAppends is the mean group-commit batch size.
	Records int64
	// PayloadBytes sums data-entry payload sizes.
	PayloadBytes int64
	// MaxRecordsPerEntry is the largest batch observed.
	MaxRecordsPerEntry int64
	// RecordsPerEntry is a power-of-two histogram of batch sizes: bucket i
	// counts data entries carrying [2^i, 2^(i+1)) records (the last bucket
	// is open-ended).
	RecordsPerEntry [8]int64
	// DegradedAppends counts appends that committed with fewer than
	// AZCount acknowledgements (quorum met, full replication not).
	DegradedAppends int64
}

// histBucket maps a record count to its RecordsPerEntry bucket.
func histBucket(records int) int {
	b := 0
	for records > 1 && b < 7 {
		records >>= 1
		b++
	}
	return b
}

// Stats returns a copy of the log's append counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// MeanRecordsPerEntry returns Records/DataAppends (1 when no data was
// appended) — the effective group-commit amortization factor.
func (s Stats) MeanRecordsPerEntry() float64 {
	if s.DataAppends == 0 {
		return 1
	}
	return float64(s.Records) / float64(s.DataAppends)
}

func newLog(s *Service, shardID string) *Log {
	return &Log{
		svc:        s,
		shardID:    shardID,
		segs:       []*segment{{}},
		commitWake: make(chan struct{}),
	}
}

// ShardID returns the owning shard's ID.
func (l *Log) ShardID() string { return l.shardID }

// FailAppends injects (or clears) append failures for this log only.
func (l *Log) FailAppends(on bool) { l.appendsFailed.Set(on) }

// Degraded reports whether the owning service currently runs below full
// replication (at least one AZ down) while still meeting quorum.
func (l *Log) Degraded() bool { return l.svc.Degraded() }

// Pending is an assigned-but-possibly-not-yet-durable append. The entry
// is guaranteed to commit (the service is internally reliable); Wait
// blocks until it is durable in a quorum of AZs.
type Pending struct {
	id      EntryID
	acks    int // AZ replicas that acknowledged (>= quorum)
	azTotal int // configured AZ count
	done    chan struct{}
}

// ID returns the assigned entry ID.
func (p *Pending) ID() EntryID { return p.id }

// Acks returns how many AZ replicas acknowledged the append. Acks below
// AZTotal means the write committed degraded (quorum met, full
// replication not).
func (p *Pending) Acks() int { return p.acks }

// AZTotal returns the configured number of AZ replicas.
func (p *Pending) AZTotal() int { return p.azTotal }

// Wait blocks until the entry is durably committed or ctx is cancelled.
// A cancelled wait does not abort the append: the entry still commits —
// mirroring a timed-out client whose write nevertheless persisted.
func (p *Pending) Wait(ctx context.Context) (EntryID, error) {
	select {
	case <-p.done:
		return p.id, nil
	case <-ctx.Done():
		return p.id, ctx.Err()
	}
}

// StartAppend atomically validates the precondition and assigns the next
// entry ID, returning a Pending handle for the durable acknowledgement.
// Assignment is synchronous and cheap, so a primary can pipeline appends
// by chaining after = previous Pending's ID without waiting for commits.
// A stale after (not the current tail) fails with ErrConditionFailed —
// the primitive that fences stale writers and arbitrates leadership
// claims (§4.1.1, §4.1.2).
func (l *Log) StartAppend(after EntryID, e Entry) (*Pending, error) {
	if l.svc.down.On() || l.appendsFailed.On() {
		return nil, ErrUnavailable
	}
	// Per-AZ quorum: sample every zone's acknowledgement before assigning a
	// sequence number, so a below-quorum service rejects the append with no
	// state change (the caller's position is intact and a retry is safe).
	// Once assigned, the entry is guaranteed to commit.
	commitLat, acked, ok := l.svc.quorumAck()
	if !ok {
		return nil, ErrUnavailable
	}
	acks := len(acked)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrNoSuchLog
	}
	if after.Seq != l.assigned {
		l.mu.Unlock()
		return nil, ErrConditionFailed
	}
	if e.Type == EntryLeadership {
		// Leadership claims must move the epoch forward; the log enforces
		// monotonicity so a delayed duplicate claim cannot regress it.
		if e.Epoch <= l.currentEpoch {
			l.mu.Unlock()
			return nil, ErrConditionFailed
		}
		l.currentEpoch = e.Epoch
	}
	l.assigned++
	e.ID = EntryID{Seq: l.assigned}
	e.acks = uint8(acks)
	// The record CRC is fixed now, over what the writer sent; a Corrupt
	// decision at txlog.corrupt_record then silently damages the stored
	// copy (bit rot the CRC no longer matches) — read-time verification
	// must catch it.
	crc := recordCRC(&e)
	if e.Type == EntryData {
		if d := l.svc.cfg.Faults.Hit(faultpoint.SiteLogCorruptRecord); d.Kind == faultpoint.Corrupt && len(e.Payload) > 0 {
			e.Payload = l.svc.cfg.Faults.FlipByte(e.Payload)
		}
	}
	act := l.active()
	act.entries = append(act.entries, e)
	act.cums = append(act.cums, 0)
	act.crcs = append(act.crcs, crc)
	act.bytes += int64(len(e.Payload))
	l.stats.Appends++
	if acks < l.svc.cfg.AZCount {
		l.stats.DegradedAppends++
	}
	if e.Type == EntryData {
		records := e.RecordCount()
		l.stats.DataAppends++
		l.stats.Records += int64(records)
		l.stats.PayloadBytes += int64(len(e.Payload))
		l.stats.RecordsPerEntry[histBucket(records)]++
		if int64(records) > l.stats.MaxRecordsPerEntry {
			l.stats.MaxRecordsPerEntry = int64(records)
		}
	}
	// Rotate when the active segment crosses a threshold: it closes here
	// and seals (footer over the record-CRC index) once fully committed.
	if len(act.entries) >= l.svc.cfg.SegmentEntries || act.bytes >= int64(l.svc.cfg.SegmentBytes) {
		act.closed = true
		l.segs = append(l.segs, &segment{base: act.maxSeq()})
	}
	p := &Pending{id: e.ID, acks: acks, azTotal: l.svc.cfg.AZCount, done: make(chan struct{})}
	clk := l.svc.cfg.Clock
	l.mu.Unlock()

	// Traced entry: attach one span per acknowledging zone under the
	// batch's append span, so the trace tree shows which AZs carried the
	// quorum and how fast each acked.
	if e.TraceID != 0 {
		if c := l.svc.cfg.Trace; c != nil {
			parent := trace.SpanContext{TraceID: e.TraceID, SpanID: e.TraceSpan}
			now := trace.Now()
			for _, a := range acked {
				c.Emit(parent, "az_ack", azNodeName(a.az), a.az, -1, now, now+int64(a.lat))
			}
		}
	}

	go func() {
		// Quorum commit: the append is durable at the quorum-th fastest
		// per-AZ acknowledgement (with one zone down, the slower of the
		// remaining two — degraded latency, preserved availability).
		if commitLat > 0 {
			<-clk.After(commitLat)
		}
		l.commitEntry(p.id)
		// Acknowledgement implies the whole prefix is durable: hold the
		// done signal until the in-order watermark covers this entry
		// (timers of earlier entries may still be running).
		l.waitCommitted(p.id.Seq)
		close(p.done)
	}()
	return p, nil
}

// waitCommitted blocks until the committed watermark reaches seq. It
// also returns if the entry no longer exists (RecoverChain truncated a
// torn tail past it) or the log was destroyed.
func (l *Log) waitCommitted(seq uint64) {
	for {
		l.mu.Lock()
		if l.committed >= seq || l.assigned < seq || l.closed {
			l.mu.Unlock()
			return
		}
		wake := l.commitWake
		l.mu.Unlock()
		<-wake
	}
}

// Append is StartAppend followed by Wait: it blocks for the quorum commit
// latency and returns the assigned ID once the entry is durable.
func (l *Log) Append(ctx context.Context, after EntryID, e Entry) (EntryID, error) {
	p, err := l.StartAppend(after, e)
	if err != nil {
		return ZeroID, err
	}
	return p.Wait(ctx)
}

func (l *Log) commitEntry(id EntryID) {
	l.mu.Lock()
	// Commits apply in ID order: mark this entry committable and advance
	// the watermark over any in-order committable prefix.
	if s := l.segFor(id.Seq); s != nil {
		s.entry(id.Seq).committedMark()
	}
	advanced := false
	for {
		s := l.segFor(l.committed + 1)
		if s == nil {
			break
		}
		next := s.entry(l.committed + 1)
		if !next.isCommitted() {
			break
		}
		l.committed++
		advanced = true
		copies := int64(next.acks)
		if copies == 0 {
			copies = int64(l.svc.cfg.AZCount) // pre-quorum-model entries
		}
		l.azCopies += copies
		if next.Type == EntryData {
			l.checksum = crc64.Update(l.checksum, crcTable, next.Payload)
		}
		s.cums[l.committed-s.base-1] = l.checksum
	}
	sealDue := l.sealDueLocked() != nil
	if advanced {
		close(l.commitWake)
		l.commitWake = make(chan struct{})
	}
	l.mu.Unlock()
	if sealDue {
		l.finalizeSeals()
	}
}

// sealDueLocked returns a closed, fully committed, not-yet-sealed
// segment with no sealer already working on it. Caller holds mu.
func (l *Log) sealDueLocked() *segment {
	for _, s := range l.segs {
		if s.closed && !s.sealed && !s.sealing && s.maxSeq() <= l.committed {
			return s
		}
	}
	return nil
}

// finalizeSeals seals every due segment. It runs on commit goroutines
// after the log lock is released, so an injected sealer stall
// (txlog.seal.pre Delay) never blocks writers. Error/Crash at
// txlog.seal.pre models the sealer dying before the footer write: the
// segment stays closed-but-unsealed (and untrimmable) until a later
// commit retries; Corrupt writes a bad footer the restart verification
// pass must catch. txlog.seal.post fires once the segment is immutable.
func (l *Log) finalizeSeals() {
	faults := l.svc.cfg.Faults
	clk := l.svc.cfg.Clock
	for {
		l.mu.Lock()
		target := l.sealDueLocked()
		if target != nil {
			target.sealing = true
		}
		l.mu.Unlock()
		if target == nil {
			return
		}
		d := faults.Hit(faultpoint.SiteLogSealPre)
		if d.Kind == faultpoint.Delay {
			clk.Sleep(d.Delay)
		}
		l.mu.Lock()
		target.sealing = false
		if d.Kind == faultpoint.Error || d.Kind == faultpoint.Crash {
			l.sealsDeferred++
			l.mu.Unlock()
			return
		}
		target.footer = target.computeFooter()
		if d.Kind == faultpoint.Corrupt {
			target.footer ^= 0x5a5a5a5a
		}
		target.sealed = true
		l.sealedTotal++
		sealedMax := target.maxSeq()
		l.mu.Unlock()
		l.svc.cfg.Flight.Record(trace.EvSegmentSeal, sealedMax, l.shardID)
		// Every zone replica stores (or, if down, misses) the sealed
		// segment — the segment-granular per-AZ state.
		l.svc.noteSeal()
		if d := faults.Hit(faultpoint.SiteLogSealPost); d.Kind == faultpoint.Delay {
			clk.Sleep(d.Delay)
		}
	}
}

// committedMark / isCommitted piggyback on Epoch's high bit to avoid a
// parallel bookkeeping slice. Epochs are far below 2^62 in practice.
const committedBit = uint64(1) << 63

func (e *Entry) committedMark() { e.Epoch |= committedBit }
func (e *Entry) isCommitted() bool {
	return e.Epoch&committedBit != 0
}

// EpochValue returns the writer epoch without the internal committed bit.
func (e Entry) EpochValue() uint64 { return e.Epoch &^ committedBit }

// ChainChecksum extends a running log checksum with one more data-entry
// payload. The primary uses this to maintain its local running checksum,
// which it periodically injects into the log as an EntryChecksum (§7.2.1).
func ChainChecksum(sum uint64, payload []byte) uint64 {
	return crc64.Update(sum, crcTable, payload)
}

// EncodeChecksumPayload renders a running checksum as an EntryChecksum
// payload.
func EncodeChecksumPayload(sum uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, sum)
	return b
}

// DecodeChecksumPayload parses an EntryChecksum payload.
func DecodeChecksumPayload(b []byte) uint64 {
	if len(b) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// CommittedTail returns the ID of the last committed (reader-visible)
// entry; ZeroID when empty.
func (l *Log) CommittedTail() EntryID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return EntryID{Seq: l.committed}
}

// ConsistentTail is CommittedTail with an availability check: it is the
// read-index primitive for linearizable replica reads. A replica that
// wants to serve a read linearizably captures the committed tail HERE —
// at the authoritative log service, after the read arrived — and waits
// until its applied position covers it. Returning ErrUnavailable when
// the service is down or below quorum is what makes the capture sound:
// a partitioned replica cannot obtain a fresh tail, so it degrades
// instead of serving a guess. (The piggybacked Entry.Watermark cannot
// substitute: it is always behind the entry carrying it.)
func (l *Log) ConsistentTail() (EntryID, error) {
	if err := l.svc.readErr(); err != nil {
		return ZeroID, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return EntryID{Seq: l.committed}, nil
}

// AssignedTail returns the ID a new append must follow. For a caught-up
// writer this equals CommittedTail.
func (l *Log) AssignedTail() EntryID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return EntryID{Seq: l.assigned}
}

// CurrentEpoch returns the highest leadership epoch ever claimed.
func (l *Log) CurrentEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.currentEpoch
}

// RunningChecksum returns the committed tail and the running CRC64 of all
// committed data payloads up to it.
func (l *Log) RunningChecksum() (EntryID, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return EntryID{Seq: l.committed}, l.checksum
}

// AZCopies returns the total number of durable (entry × AZ) copies made —
// a metric tests use to assert multi-AZ replication happened.
func (l *Log) AZCopies() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.azCopies
}

// quarantineLocked condemns a segment after a record in it failed
// verification: every read from it now fails with ErrCorruptSegment. A
// poisoned active segment is closed and a clean one installed so appends
// continue (sequence numbering runs across the hole). Caller holds mu.
func (l *Log) quarantineLocked(s *segment, reason string) {
	if s.quarantined {
		return
	}
	s.quarantined = true
	l.quarantinedTotal++
	if s == l.active() && !s.closed {
		s.closed = true
		l.segs = append(l.segs, &segment{base: s.maxSeq()})
	}
	if fn := l.svc.cfg.AlarmFn; fn != nil {
		fn(fmt.Sprintf("txlog %s: quarantined segment [%d,%d]: %s",
			l.shardID, s.minSeq(), s.maxSeq(), reason))
	}
	l.svc.cfg.Flight.Record(trace.EvSegmentQuarantine, s.maxSeq(), reason)
}

// verifyRecordLocked re-checks the stored record at seq against its
// append-time CRC; a mismatch quarantines the whole segment. Caller
// holds mu; returns false when the record cannot be served.
func (l *Log) verifyRecordLocked(s *segment, seq uint64) bool {
	if s.quarantined {
		return false
	}
	if recordCRC(s.entry(seq)) == s.crc(seq) {
		return true
	}
	l.quarantineLocked(s, fmt.Sprintf("record %d failed CRC verification", seq))
	return false
}

// Get returns the committed entry with the given ID. Reads verify the
// record CRC: a mismatch quarantines the segment and the read fails.
func (l *Log) Get(id EntryID) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id.Seq <= l.trimBase() || id.Seq > l.committed {
		return Entry{}, false
	}
	s := l.segFor(id.Seq)
	if s == nil || !l.verifyRecordLocked(s, id.Seq) {
		return Entry{}, false
	}
	e := *s.entry(id.Seq)
	e.Epoch = e.EpochValue()
	return e, true
}

// TrimBase returns the current trim point: the position reads at or
// before which fail with ErrTrimmed (a whole-segment boundary).
func (l *Log) TrimBase() EntryID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return EntryID{Seq: l.trimBase()}
}

// ChecksumAt returns the running checksum as of committed entry id (the
// checksum over all committed data payloads with Seq <= id.Seq). Fails for
// trimmed, quarantined, or uncommitted positions.
func (l *Log) ChecksumAt(id EntryID) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id.Seq < l.trimBase() {
		return 0, ErrTrimmed
	}
	if id.Seq == l.trimBase() {
		return l.baseChecksum, nil
	}
	if id.Seq > l.committed {
		return 0, fmt.Errorf("txlog: %v not committed", id)
	}
	s := l.segFor(id.Seq)
	if s == nil {
		return 0, ErrTrimmed
	}
	if s.quarantined {
		return 0, ErrCorruptSegment
	}
	return s.cum(id.Seq), nil
}

// Trim discards whole sealed segments entirely covered by upTo — the
// snapshot-coordinated trim point. Partial segments are never split, so
// the effective trim point rounds down to a segment boundary and
// ChecksumAt stays answerable at every retained position (and, via the
// recorded base checksum, at the boundary itself). Reads from trimmed
// positions fail with ErrTrimmed; recovery must start from a snapshot at
// or after the trim point — the coordinator (snapshot.Trimmer) only ever
// passes positions covered by a durable, verified snapshot. Returns how
// many segments were dropped; an Error/Crash decision at txlog.trim.pre
// aborts the call with no state change (the coordinator retries).
func (l *Log) Trim(upTo EntryID) int {
	faults := l.svc.cfg.Faults
	switch d := faults.Hit(faultpoint.SiteLogTrimPre); d.Kind {
	case faultpoint.Error, faultpoint.Crash:
		l.mu.Lock()
		l.trimsDeferred++
		l.mu.Unlock()
		return 0
	case faultpoint.Delay:
		l.svc.cfg.Clock.Sleep(d.Delay)
	}
	n := 0
	l.mu.Lock()
	for len(l.segs) > 1 {
		s := l.segs[0]
		if !s.sealed || s.maxSeq() > upTo.Seq || s.maxSeq() > l.committed {
			break
		}
		l.baseChecksum = s.cums[len(s.cums)-1]
		l.entriesTrimmed += int64(len(s.entries))
		l.trimmedTotal++
		l.segs = l.segs[1:]
		n++
	}
	if n > 0 {
		// Re-slice so the dropped segments' backing array is released.
		l.segs = append([]*segment(nil), l.segs...)
	}
	newBase := l.trimBase()
	l.mu.Unlock()
	if n > 0 {
		l.svc.cfg.Flight.Record(trace.EvSegmentTrim, newBase, l.shardID)
	}
	faults.Hit(faultpoint.SiteLogTrimPost)
	return n
}

// RecoverChain models the log service's restart integrity pass: verify
// chain contiguity and every sealed segment's footer + record CRCs
// (quarantining mismatches, with counter and alarm), re-verify the
// committed records of unsealed segments, and truncate the torn tail —
// assigned-but-uncommitted entries a dying service never finished
// replicating. Harnesses call it on a quiesced log (no appends in
// flight). Returns the number of segments quarantined and entries
// truncated by this pass.
func (l *Log) RecoverChain() (quarantined, truncated int) {
	l.mu.Lock()
	for i, s := range l.segs {
		if i > 0 && s.base != l.segs[i-1].maxSeq() && !s.quarantined {
			l.quarantineLocked(s, "segment chain discontinuity")
			quarantined++
			continue
		}
		if s.quarantined {
			continue
		}
		if s.sealed {
			if !s.verify() {
				l.quarantineLocked(s, "sealed segment failed footer/CRC verification")
				quarantined++
			}
			continue
		}
		for seq := s.minSeq(); seq <= s.maxSeq() && seq <= l.committed; seq++ {
			if recordCRC(s.entry(seq)) != s.crc(seq) {
				l.quarantineLocked(s, fmt.Sprintf("record %d failed CRC verification", seq))
				quarantined++
				break
			}
		}
	}
	if l.assigned > l.committed {
		for len(l.segs) > 0 {
			s := l.segs[len(l.segs)-1]
			if s.base >= l.committed {
				// Entire segment is uncommitted tail: drop it.
				truncated += len(s.entries)
				l.segs = l.segs[:len(l.segs)-1]
				continue
			}
			if s.maxSeq() > l.committed {
				keep := int(l.committed - s.base)
				truncated += len(s.entries) - keep
				s.entries = s.entries[:keep]
				s.crcs = s.crcs[:keep]
				s.cums = s.cums[:keep]
				var b int64
				for i := range s.entries {
					b += int64(len(s.entries[i].Payload))
				}
				s.bytes = b
			}
			break
		}
		if len(l.segs) == 0 {
			l.segs = []*segment{{base: l.committed}}
		}
		l.assigned = l.committed
		l.tornTruncated += int64(truncated)
		// Wake any torn-entry waiters so they observe the truncation.
		close(l.commitWake)
		l.commitWake = make(chan struct{})
	}
	// Guarantee an appendable active segment.
	if act := l.active(); act.sealed || act.closed || act.quarantined {
		l.segs = append(l.segs, &segment{base: act.maxSeq()})
	}
	l.mu.Unlock()
	return quarantined, truncated
}

// DamageRecord flips one byte of the stored payload of the entry at seq —
// the at-rest bit-rot injection recovery tests use (the append-time
// variant is the txlog.corrupt_record fault site). Returns false when
// the position is trimmed/unknown or carries no payload.
func (l *Log) DamageRecord(seq uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.segFor(seq)
	if s == nil {
		return false
	}
	e := s.entry(seq)
	if len(e.Payload) == 0 {
		return false
	}
	cp := append([]byte(nil), e.Payload...)
	cp[0] ^= 0xff
	e.Payload = cp
	return true
}

func (l *Log) closeAll() {
	l.mu.Lock()
	l.closed = true
	close(l.commitWake)
	l.commitWake = make(chan struct{})
	l.mu.Unlock()
}
