// Package txlog implements the internal durable transaction log service
// MemoryDB offloads durability to (paper §3). The service hosts one log per
// shard. Each log offers the conditional-append API the paper builds
// leader election and fencing on: every entry has a unique identifier and
// an append must name the identifier of the entry it intends to follow;
// appends are acknowledged only once durably committed to a quorum of
// simulated Availability Zones.
//
// The real AWS service is an existing, battle-tested internally replicated
// system; MemoryDB consumes only its API surface. We model its interior
// just deeply enough to reproduce its fault envelope: every log is copied
// to AZCount simulated zone replicas (AZReplica), each with its own
// latency draw and independently injectable faults (down, flaky, slow).
// An append is accepted only when a quorum of zones acknowledges it —
// below quorum the service is unavailable and appends/reads fail with
// ErrUnavailable — and an accepted entry always commits after the quorum
// latency (internal reliability). Client-boundary failures (partitions,
// whole-service outages) are injected on top, which is exactly where
// MemoryDB observes them.
package txlog

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"sort"
	"sync"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/netsim"
)

// EntryID uniquely identifies a log entry. Seq 0 is the sentinel "before
// the first entry": appending with After == ZeroID targets an empty log.
type EntryID struct {
	Seq uint64
}

// ZeroID is the position before the first entry.
var ZeroID = EntryID{}

// Less orders entry IDs.
func (id EntryID) Less(o EntryID) bool { return id.Seq < o.Seq }

// String renders the ID for logs and errors.
func (id EntryID) String() string { return fmt.Sprintf("e%d", id.Seq) }

// EntryType tags the meaning of an entry's payload.
type EntryType uint8

// Entry types used by MemoryDB atop the log.
const (
	// EntryData carries a chunk of the intercepted replication stream
	// (RESP-encoded effect commands).
	EntryData EntryType = iota
	// EntryLeadership is a leader-claim record (§4.1.1).
	EntryLeadership
	// EntryLease is a periodic lease renewal / heartbeat (§4.1.3, §4.2).
	EntryLease
	// EntryChecksum is an injected running checksum of the log prefix,
	// used by snapshot verification (§7.2.1).
	EntryChecksum
	// EntrySlot carries 2-phase-commit slot ownership messages (§5.2).
	EntrySlot
	// EntryControl carries other control-plane messages.
	EntryControl
)

// String names the entry type.
func (t EntryType) String() string {
	switch t {
	case EntryData:
		return "data"
	case EntryLeadership:
		return "leadership"
	case EntryLease:
		return "lease"
	case EntryChecksum:
		return "checksum"
	case EntrySlot:
		return "slot"
	case EntryControl:
		return "control"
	}
	return "unknown"
}

// Entry is one committed log record.
type Entry struct {
	ID   EntryID
	Type EntryType
	// Epoch is the leadership epoch of the writer. Leadership entries
	// carry the epoch being claimed.
	Epoch uint64
	// EngineVersion tags which engine version produced the record, for
	// the upgrade protection mechanism (§7.1).
	EngineVersion uint32
	// Records counts the logical replication records coalesced into this
	// data entry by group commit (0 is treated as 1). Metadata only: the
	// payload is self-framing, but the count lets the log keep
	// records-per-entry statistics without parsing payloads.
	Records uint32
	Payload []byte
	// acks is the number of AZ replicas that acknowledged this entry's
	// append (set by StartAppend; drives the AZCopies metric).
	acks uint8
}

// RecordCount returns the number of logical records the entry carries.
func (e Entry) RecordCount() int {
	if e.Records == 0 {
		return 1
	}
	return int(e.Records)
}

// Errors returned by the log. They split into two classes that clients
// MUST treat differently (§4.1.3):
//
//   - Transient (retryable): ErrUnavailable. The service could not be
//     reached or could not assemble a quorum right now; the caller's
//     position in the log is unchanged, so retrying the identical call is
//     safe and correct. IsTransient reports this class.
//   - Fatal: ErrConditionFailed (the fencing primitive — another writer
//     owns the tail; retrying can never succeed and the caller must
//     demote), ErrNoSuchLog, ErrTrimmed. Retrying is wrong.
var (
	// ErrConditionFailed reports that After did not name the current tail
	// — another writer appended first. This is the fencing primitive.
	ErrConditionFailed = errors.New("txlog: conditional append failed: not at tail")
	// ErrUnavailable reports that the caller cannot reach the service
	// (partition, injected outage, or fewer than quorum healthy AZs).
	ErrUnavailable = errors.New("txlog: service unavailable")
	// ErrNoSuchLog reports an unknown shard log.
	ErrNoSuchLog = errors.New("txlog: no such log")
	// ErrTrimmed reports a read from a position older than the trim point.
	ErrTrimmed = errors.New("txlog: position trimmed")
)

// IsTransient reports whether err is a retryable service condition (the
// caller's log position is unchanged and the identical call may succeed
// later). Fencing and trim errors are fatal: retrying cannot help and the
// caller must change state (demote, restore from snapshot) instead.
func IsTransient(err error) bool {
	return errors.Is(err, ErrUnavailable) ||
		errors.Is(err, context.DeadlineExceeded)
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// Config parameterizes the service.
type Config struct {
	// Clock drives latency simulation. Defaults to the wall clock.
	Clock clock.Clock
	// CommitLatency is the per-AZ acknowledgement latency model: each zone
	// replica draws independently and an append commits at the Quorum-th
	// fastest ack. Defaults to zero.
	CommitLatency netsim.LatencyModel
	// SlowExtra is the additional latency a zone marked slow pays per
	// acknowledgement. Defaults to a fixed 2ms.
	SlowExtra netsim.LatencyModel
	// AZCount is the number of availability zone replicas entries are
	// copied to. Defaults to 3.
	AZCount int
	// Quorum is how many AZ acknowledgements an append needs. Defaults to
	// a majority of AZCount (2 of 3).
	Quorum int
	// Seed makes flaky-AZ fault draws deterministic. Zero is a valid seed.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.CommitLatency == nil {
		c.CommitLatency = netsim.Zero{}
	}
	if c.SlowExtra == nil {
		c.SlowExtra = netsim.Fixed(2 * time.Millisecond)
	}
	if c.AZCount == 0 {
		c.AZCount = 3
	}
	if c.Quorum == 0 {
		c.Quorum = c.AZCount/2 + 1
	}
	return c
}

// Service hosts one transaction log per shard, replicated across a fixed
// set of simulated availability zones shared by all logs (zones are a
// property of the service deployment, not of one shard).
type Service struct {
	cfg  Config
	azs  []*AZReplica
	mu   sync.Mutex
	logs map[string]*Log
	down netsim.Flag // whole-service outage injection
}

// NewService returns an empty log service.
func NewService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{cfg: cfg, logs: make(map[string]*Log)}
	for i := 0; i < cfg.AZCount; i++ {
		s.azs = append(s.azs, newAZReplica(i, cfg.CommitLatency, cfg.SlowExtra, cfg.Seed+int64(i)))
	}
	return s
}

// SetUnavailable injects (or clears) a whole-service outage.
func (s *Service) SetUnavailable(down bool) { s.down.Set(down) }

// AZ returns the i-th zone replica for fault injection (0-based).
func (s *Service) AZ(i int) *AZReplica { return s.azs[i] }

// AZs returns all zone replicas.
func (s *Service) AZs() []*AZReplica { return append([]*AZReplica(nil), s.azs...) }

// HealthyAZs counts zones not currently down (flaky/slow zones count as
// healthy — they still serve, just unreliably or slowly).
func (s *Service) HealthyAZs() int {
	n := 0
	for _, az := range s.azs {
		if !az.Down() {
			n++
		}
	}
	return n
}

// Quorum returns the acknowledgement quorum appends must reach.
func (s *Service) Quorum() int { return s.cfg.Quorum }

// Degraded reports whether the service is running below full replication
// (at least one zone down) while still meeting quorum.
func (s *Service) Degraded() bool {
	h := s.HealthyAZs()
	return h < s.cfg.AZCount && h >= s.cfg.Quorum
}

// readErr reports whether committed entries can currently be served to
// readers: a whole-service outage or a below-quorum zone set makes reads
// fail transiently (the data is safe; the service just cannot serve it).
func (s *Service) readErr() error {
	if s.down.On() || s.HealthyAZs() < s.cfg.Quorum {
		return ErrUnavailable
	}
	return nil
}

// quorumAck samples one append across the zone replicas: every zone draws
// an acknowledgement (or drops it — down/flaky), and the append commits at
// the Quorum-th fastest ack. ok=false means quorum was not reached and the
// append must be rejected as unavailable.
func (s *Service) quorumAck() (commit time.Duration, acks int, ok bool) {
	var lat []time.Duration
	for _, az := range s.azs {
		if d, acked := az.ack(); acked {
			lat = append(lat, d)
		}
	}
	if len(lat) < s.cfg.Quorum {
		return 0, len(lat), false
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[s.cfg.Quorum-1], len(lat), true
}

// CreateLog provisions the log for shardID. Creating an existing log is an
// error (resharding must use fresh shard IDs).
func (s *Service) CreateLog(shardID string) (*Log, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.logs[shardID]; ok {
		return nil, fmt.Errorf("txlog: log %q already exists", shardID)
	}
	l := newLog(s, shardID)
	s.logs[shardID] = l
	return l, nil
}

// Log returns the log for shardID.
func (s *Service) Log(shardID string) (*Log, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.logs[shardID]
	return l, ok
}

// DeleteLog destroys the log for shardID (end of a scale-in, §5.2).
func (s *Service) DeleteLog(shardID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.logs[shardID]
	if !ok {
		return ErrNoSuchLog
	}
	l.closeAll()
	delete(s.logs, shardID)
	return nil
}

// Log is one shard's transaction log.
type Log struct {
	svc     *Service
	shardID string

	mu        sync.Mutex
	baseSeq   uint64   // entries[i] has Seq baseSeq+1+i
	entries   []Entry  // committed + assigned entries (committed prefix visible)
	cums      []uint64 // cums[i] = running checksum after committing entries[i]
	assigned  uint64   // highest assigned Seq
	committed uint64   // highest committed Seq (visible watermark)
	// commitWake is closed and replaced each time the watermark advances.
	commitWake chan struct{}

	// Running checksum over committed data-entry payloads, chained CRC64.
	checksum      uint64
	baseChecksum  uint64 // checksum at the trim point
	currentEpoch  uint64
	azCopies      int64 // total (entry × AZ) durable copies, for tests/metrics
	stats         Stats
	appendsFailed netsim.Flag
	closed        bool
}

// Stats are cumulative per-log append counters, the observability surface
// for group commit: when the primary coalesces records, Records grows
// faster than DataAppends and the histogram shifts toward larger buckets.
type Stats struct {
	// Appends counts successful StartAppend calls of any entry type.
	Appends int64
	// DataAppends counts successful EntryData appends (quorum round-trips
	// spent on the replication stream).
	DataAppends int64
	// Records counts logical replication records across all data appends;
	// Records/DataAppends is the mean group-commit batch size.
	Records int64
	// PayloadBytes sums data-entry payload sizes.
	PayloadBytes int64
	// MaxRecordsPerEntry is the largest batch observed.
	MaxRecordsPerEntry int64
	// RecordsPerEntry is a power-of-two histogram of batch sizes: bucket i
	// counts data entries carrying [2^i, 2^(i+1)) records (the last bucket
	// is open-ended).
	RecordsPerEntry [8]int64
	// DegradedAppends counts appends that committed with fewer than
	// AZCount acknowledgements (quorum met, full replication not).
	DegradedAppends int64
}

// histBucket maps a record count to its RecordsPerEntry bucket.
func histBucket(records int) int {
	b := 0
	for records > 1 && b < 7 {
		records >>= 1
		b++
	}
	return b
}

// Stats returns a copy of the log's append counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// MeanRecordsPerEntry returns Records/DataAppends (1 when no data was
// appended) — the effective group-commit amortization factor.
func (s Stats) MeanRecordsPerEntry() float64 {
	if s.DataAppends == 0 {
		return 1
	}
	return float64(s.Records) / float64(s.DataAppends)
}

func newLog(s *Service, shardID string) *Log {
	return &Log{svc: s, shardID: shardID, commitWake: make(chan struct{})}
}

// ShardID returns the owning shard's ID.
func (l *Log) ShardID() string { return l.shardID }

// FailAppends injects (or clears) append failures for this log only.
func (l *Log) FailAppends(on bool) { l.appendsFailed.Set(on) }

// Degraded reports whether the owning service currently runs below full
// replication (at least one AZ down) while still meeting quorum.
func (l *Log) Degraded() bool { return l.svc.Degraded() }

// Pending is an assigned-but-possibly-not-yet-durable append. The entry
// is guaranteed to commit (the service is internally reliable); Wait
// blocks until it is durable in a quorum of AZs.
type Pending struct {
	id      EntryID
	acks    int // AZ replicas that acknowledged (>= quorum)
	azTotal int // configured AZ count
	done    chan struct{}
}

// ID returns the assigned entry ID.
func (p *Pending) ID() EntryID { return p.id }

// Acks returns how many AZ replicas acknowledged the append. Acks below
// AZTotal means the write committed degraded (quorum met, full
// replication not).
func (p *Pending) Acks() int { return p.acks }

// AZTotal returns the configured number of AZ replicas.
func (p *Pending) AZTotal() int { return p.azTotal }

// Wait blocks until the entry is durably committed or ctx is cancelled.
// A cancelled wait does not abort the append: the entry still commits —
// mirroring a timed-out client whose write nevertheless persisted.
func (p *Pending) Wait(ctx context.Context) (EntryID, error) {
	select {
	case <-p.done:
		return p.id, nil
	case <-ctx.Done():
		return p.id, ctx.Err()
	}
}

// StartAppend atomically validates the precondition and assigns the next
// entry ID, returning a Pending handle for the durable acknowledgement.
// Assignment is synchronous and cheap, so a primary can pipeline appends
// by chaining after = previous Pending's ID without waiting for commits.
// A stale after (not the current tail) fails with ErrConditionFailed —
// the primitive that fences stale writers and arbitrates leadership
// claims (§4.1.1, §4.1.2).
func (l *Log) StartAppend(after EntryID, e Entry) (*Pending, error) {
	if l.svc.down.On() || l.appendsFailed.On() {
		return nil, ErrUnavailable
	}
	// Per-AZ quorum: sample every zone's acknowledgement before assigning a
	// sequence number, so a below-quorum service rejects the append with no
	// state change (the caller's position is intact and a retry is safe).
	// Once assigned, the entry is guaranteed to commit.
	commitLat, acks, ok := l.svc.quorumAck()
	if !ok {
		return nil, ErrUnavailable
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrNoSuchLog
	}
	if after.Seq != l.assigned {
		l.mu.Unlock()
		return nil, ErrConditionFailed
	}
	if e.Type == EntryLeadership {
		// Leadership claims must move the epoch forward; the log enforces
		// monotonicity so a delayed duplicate claim cannot regress it.
		if e.Epoch <= l.currentEpoch {
			l.mu.Unlock()
			return nil, ErrConditionFailed
		}
		l.currentEpoch = e.Epoch
	}
	l.assigned++
	e.ID = EntryID{Seq: l.assigned}
	e.acks = uint8(acks)
	l.entries = append(l.entries, e)
	l.cums = append(l.cums, 0)
	l.stats.Appends++
	if acks < l.svc.cfg.AZCount {
		l.stats.DegradedAppends++
	}
	if e.Type == EntryData {
		records := e.RecordCount()
		l.stats.DataAppends++
		l.stats.Records += int64(records)
		l.stats.PayloadBytes += int64(len(e.Payload))
		l.stats.RecordsPerEntry[histBucket(records)]++
		if int64(records) > l.stats.MaxRecordsPerEntry {
			l.stats.MaxRecordsPerEntry = int64(records)
		}
	}
	p := &Pending{id: e.ID, acks: acks, azTotal: l.svc.cfg.AZCount, done: make(chan struct{})}
	clk := l.svc.cfg.Clock
	l.mu.Unlock()

	go func() {
		// Quorum commit: the append is durable at the quorum-th fastest
		// per-AZ acknowledgement (with one zone down, the slower of the
		// remaining two — degraded latency, preserved availability).
		if commitLat > 0 {
			<-clk.After(commitLat)
		}
		l.commitEntry(p.id)
		// Acknowledgement implies the whole prefix is durable: hold the
		// done signal until the in-order watermark covers this entry
		// (timers of earlier entries may still be running).
		l.waitCommitted(p.id.Seq)
		close(p.done)
	}()
	return p, nil
}

// waitCommitted blocks until the committed watermark reaches seq.
func (l *Log) waitCommitted(seq uint64) {
	for {
		l.mu.Lock()
		if l.committed >= seq || l.closed {
			l.mu.Unlock()
			return
		}
		wake := l.commitWake
		l.mu.Unlock()
		<-wake
	}
}

// Append is StartAppend followed by Wait: it blocks for the quorum commit
// latency and returns the assigned ID once the entry is durable.
func (l *Log) Append(ctx context.Context, after EntryID, e Entry) (EntryID, error) {
	p, err := l.StartAppend(after, e)
	if err != nil {
		return ZeroID, err
	}
	return p.Wait(ctx)
}

func (l *Log) commitEntry(id EntryID) {
	l.mu.Lock()
	// Commits apply in ID order: mark this entry committable and advance
	// the watermark over any in-order committable prefix.
	idx := int(id.Seq - l.baseSeq - 1)
	if idx >= 0 && idx < len(l.entries) {
		l.entries[idx].committedMark()
	}
	advanced := false
	for int(l.committed-l.baseSeq) < len(l.entries) {
		i := l.committed - l.baseSeq
		next := &l.entries[i]
		if !next.isCommitted() {
			break
		}
		l.committed++
		advanced = true
		copies := int64(next.acks)
		if copies == 0 {
			copies = int64(l.svc.cfg.AZCount) // pre-quorum-model entries
		}
		l.azCopies += copies
		if next.Type == EntryData {
			l.checksum = crc64.Update(l.checksum, crcTable, next.Payload)
		}
		l.cums[i] = l.checksum
	}
	if advanced {
		close(l.commitWake)
		l.commitWake = make(chan struct{})
	}
	l.mu.Unlock()
}

// committedMark / isCommitted piggyback on Epoch's high bit to avoid a
// parallel bookkeeping slice. Epochs are far below 2^62 in practice.
const committedBit = uint64(1) << 63

func (e *Entry) committedMark() { e.Epoch |= committedBit }
func (e *Entry) isCommitted() bool {
	return e.Epoch&committedBit != 0
}

// EpochValue returns the writer epoch without the internal committed bit.
func (e Entry) EpochValue() uint64 { return e.Epoch &^ committedBit }

// ChainChecksum extends a running log checksum with one more data-entry
// payload. The primary uses this to maintain its local running checksum,
// which it periodically injects into the log as an EntryChecksum (§7.2.1).
func ChainChecksum(sum uint64, payload []byte) uint64 {
	return crc64.Update(sum, crcTable, payload)
}

// EncodeChecksumPayload renders a running checksum as an EntryChecksum
// payload.
func EncodeChecksumPayload(sum uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, sum)
	return b
}

// DecodeChecksumPayload parses an EntryChecksum payload.
func DecodeChecksumPayload(b []byte) uint64 {
	if len(b) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// CommittedTail returns the ID of the last committed (reader-visible)
// entry; ZeroID when empty.
func (l *Log) CommittedTail() EntryID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return EntryID{Seq: l.committed}
}

// AssignedTail returns the ID a new append must follow. For a caught-up
// writer this equals CommittedTail.
func (l *Log) AssignedTail() EntryID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return EntryID{Seq: l.assigned}
}

// CurrentEpoch returns the highest leadership epoch ever claimed.
func (l *Log) CurrentEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.currentEpoch
}

// RunningChecksum returns the committed tail and the running CRC64 of all
// committed data payloads up to it.
func (l *Log) RunningChecksum() (EntryID, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return EntryID{Seq: l.committed}, l.checksum
}

// AZCopies returns the total number of durable (entry × AZ) copies made —
// a metric tests use to assert multi-AZ replication happened.
func (l *Log) AZCopies() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.azCopies
}

// Get returns the committed entry with the given ID.
func (l *Log) Get(id EntryID) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id.Seq <= l.baseSeq || id.Seq > l.committed {
		return Entry{}, false
	}
	e := l.entries[id.Seq-l.baseSeq-1]
	e.Epoch = e.EpochValue()
	return e, true
}

// ChecksumAt returns the running checksum as of committed entry id (the
// checksum over all committed data payloads with Seq <= id.Seq). Fails for
// trimmed or uncommitted positions.
func (l *Log) ChecksumAt(id EntryID) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id.Seq < l.baseSeq {
		return 0, ErrTrimmed
	}
	if id.Seq == l.baseSeq {
		return l.baseChecksum, nil
	}
	if id.Seq > l.committed {
		return 0, fmt.Errorf("txlog: %v not committed", id)
	}
	return l.cums[id.Seq-l.baseSeq-1], nil
}

// Trim discards entries at or before upTo, recording the checksum at the
// trim point so verification of later prefixes still works. Reads from
// trimmed positions fail with ErrTrimmed; recovery must start from a
// snapshot at or after the trim point.
func (l *Log) Trim(upTo EntryID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if upTo.Seq <= l.baseSeq {
		return
	}
	if upTo.Seq > l.committed {
		upTo.Seq = l.committed
	}
	drop := int(upTo.Seq - l.baseSeq)
	l.baseChecksum = l.cums[drop-1]
	l.entries = append([]Entry(nil), l.entries[drop:]...)
	l.cums = append([]uint64(nil), l.cums[drop:]...)
	l.baseSeq = upTo.Seq
}

func (l *Log) closeAll() {
	l.mu.Lock()
	l.closed = true
	close(l.commitWake)
	l.commitWake = make(chan struct{})
	l.mu.Unlock()
}
