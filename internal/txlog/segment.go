package txlog

import (
	"encoding/binary"
	"hash/crc32"
)

// Segmented storage (ROADMAP item 3). The log is a chain of segments:
// the last one is active and accepts appends; when it crosses the
// configured size/entry threshold it closes (no further appends) and,
// once its every entry has committed, seals — the footer checksum over
// its per-record CRC index is computed and the segment becomes
// immutable. Only whole sealed segments are ever trimmed, so the trim
// point is always a segment boundary and ChecksumAt stays answerable at
// every retained position. Each record carries a CRC32 computed at
// append time over its identity and payload; every read re-verifies it,
// and a mismatch quarantines the whole segment (the sealed-file model:
// one bad block condemns the file, recovery falls back to a snapshot
// plus the intact suffix).
type segment struct {
	base    uint64   // Seq of the entry preceding the first entry here
	entries []Entry  // entries[i] has Seq base+1+i
	cums    []uint64 // running log checksum after committing entries[i]
	crcs    []uint32 // per-record CRC32, fixed at append time
	bytes   int64    // payload bytes held

	closed  bool // rotation happened: no further appends land here
	sealing bool // a sealer goroutine owns the in-flight seal attempt
	sealed  bool // footer computed over a fully committed segment
	footer  uint32

	// quarantined marks a segment in which a record failed CRC
	// verification: every read from it fails with ErrCorruptSegment.
	quarantined bool
}

// minSeq / maxSeq are the segment's EntryID index: the inclusive bounds
// of the sequence range it holds. An empty active segment has
// minSeq > maxSeq.
func (s *segment) minSeq() uint64 { return s.base + 1 }
func (s *segment) maxSeq() uint64 { return s.base + uint64(len(s.entries)) }

func (s *segment) contains(seq uint64) bool { return seq > s.base && seq <= s.maxSeq() }

func (s *segment) entry(seq uint64) *Entry { return &s.entries[seq-s.base-1] }
func (s *segment) crc(seq uint64) uint32   { return s.crcs[seq-s.base-1] }
func (s *segment) cum(seq uint64) uint64   { return s.cums[seq-s.base-1] }

var crc32Table = crc32.MakeTable(crc32.Castagnoli)

// recordCRC is the per-record integrity checksum stored alongside every
// entry at append time. It covers the sequence number, type, writer
// epoch, piggybacked watermark and payload, so both payload rot and
// record misplacement are detectable on read. The internal committed
// bit is excluded (it is commit-state bookkeeping, not record content).
func recordCRC(e *Entry) uint32 {
	var hdr [29]byte
	binary.BigEndian.PutUint64(hdr[0:], e.ID.Seq)
	hdr[8] = byte(e.Type)
	binary.BigEndian.PutUint64(hdr[9:], e.EpochValue())
	binary.BigEndian.PutUint32(hdr[17:], e.Records)
	binary.BigEndian.PutUint64(hdr[21:], e.Watermark)
	sum := crc32.Update(0, crc32Table, hdr[:])
	return crc32.Update(sum, crc32Table, e.Payload)
}

// computeFooter hashes the segment's bounds and its full record-CRC
// index — a cheap whole-segment summary a restart verifies without
// re-reading payloads (payload integrity is the per-record CRCs).
func (s *segment) computeFooter() uint32 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], s.base)
	sum := crc32.Update(0, crc32Table, b[:])
	binary.BigEndian.PutUint64(b[:], s.maxSeq())
	sum = crc32.Update(sum, crc32Table, b[:])
	var cb [4]byte
	for _, c := range s.crcs {
		binary.BigEndian.PutUint32(cb[:], c)
		sum = crc32.Update(sum, crc32Table, cb[:])
	}
	return sum
}

// verify re-checks a sealed segment end to end: footer over the CRC
// index, then every record against its CRC.
func (s *segment) verify() bool {
	if s.computeFooter() != s.footer {
		return false
	}
	for i := range s.entries {
		if recordCRC(&s.entries[i]) != s.crcs[i] {
			return false
		}
	}
	return true
}

// SegmentStats is the log's segment-lifecycle counter surface, exported
// through INFO `# Robustness` and Prometheus (bounded-log gate).
type SegmentStats struct {
	// LiveSegments / SealedLive / LiveEntries / LiveBytes describe what
	// the log currently holds (the active segment included).
	LiveSegments int
	SealedLive   int
	LiveEntries  int
	LiveBytes    int64
	// Sealed / Trimmed / EntriesTrimmed / Quarantined are lifetime
	// lifecycle totals.
	Sealed         int64
	Trimmed        int64
	EntriesTrimmed int64
	Quarantined    int64
	// SealsDeferred / TrimsDeferred count lifecycle steps aborted by an
	// injected fault (txlog.seal.pre / txlog.trim.pre) and retried later.
	SealsDeferred int64
	TrimsDeferred int64
	// TornTruncated counts assigned-but-uncommitted entries dropped by
	// RecoverChain's torn-tail truncation.
	TornTruncated int64
}

// SegmentStats returns the log's segment lifecycle counters.
func (l *Log) SegmentStats() SegmentStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := SegmentStats{
		LiveSegments:   len(l.segs),
		Sealed:         l.sealedTotal,
		Trimmed:        l.trimmedTotal,
		EntriesTrimmed: l.entriesTrimmed,
		Quarantined:    l.quarantinedTotal,
		SealsDeferred:  l.sealsDeferred,
		TrimsDeferred:  l.trimsDeferred,
		TornTruncated:  l.tornTruncated,
	}
	for _, s := range l.segs {
		st.LiveEntries += len(s.entries)
		st.LiveBytes += s.bytes
		if s.sealed {
			st.SealedLive++
		}
	}
	return st
}
