package txlog

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// Property: under arbitrary interleavings of appends from multiple
// writers each using its own view of the tail, the committed log is a
// single totally ordered sequence with no gaps and exactly one entry per
// successful append.
func TestQuickSingleTotalOrder(t *testing.T) {
	f := func(writerOps [4]uint8) bool {
		svc := NewService(Config{})
		l, _ := svc.CreateLog("q")
		ctx := context.Background()
		var mu sync.Mutex
		successes := 0
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			ops := int(writerOps[w]%8) + 1
			wg.Add(1)
			go func(w, ops int) {
				defer wg.Done()
				after := ZeroID
				for i := 0; i < ops; i++ {
					id, err := l.Append(ctx, after, Entry{Type: EntryData, Payload: []byte{byte(w)}})
					if err == nil {
						after = id
						mu.Lock()
						successes++
						mu.Unlock()
					} else if errors.Is(err, ErrConditionFailed) {
						// Refresh the view and retry from the real tail,
						// like a campaigning replica would.
						after = l.CommittedTail()
					} else {
						return
					}
				}
			}(w, ops)
		}
		wg.Wait()
		tail := l.CommittedTail()
		if tail.Seq != uint64(successes) {
			return false
		}
		// Every committed entry is readable, in sequence, exactly once.
		r := l.NewReader(ZeroID)
		for seq := uint64(1); seq <= tail.Seq; seq++ {
			e, ok, err := r.TryNext()
			if err != nil || !ok || e.ID.Seq != seq {
				return false
			}
		}
		_, ok, _ := r.TryNext()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the running checksum equals a fold of ChainChecksum over the
// data payloads in commit order, for any payload set.
func TestQuickChecksumFold(t *testing.T) {
	f := func(payloads [][]byte) bool {
		if len(payloads) > 50 {
			payloads = payloads[:50]
		}
		svc := NewService(Config{})
		l, _ := svc.CreateLog("q")
		ctx := context.Background()
		after := ZeroID
		want := uint64(0)
		for _, p := range payloads {
			id, err := l.Append(ctx, after, Entry{Type: EntryData, Payload: p})
			if err != nil {
				return false
			}
			after = id
			want = ChainChecksum(want, p)
		}
		_, got := l.RunningChecksum()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: trimming at any committed position preserves ChecksumAt for
// every retained position.
func TestQuickTrimPreservesChecksums(t *testing.T) {
	f := func(n, cut uint8) bool {
		entries := int(n%20) + 2
		svc := NewService(Config{})
		l, _ := svc.CreateLog("q")
		ctx := context.Background()
		after := ZeroID
		sums := make(map[uint64]uint64)
		for i := 0; i < entries; i++ {
			id, err := l.Append(ctx, after, Entry{Type: EntryData, Payload: []byte{byte(i)}})
			if err != nil {
				return false
			}
			after = id
			s, err := l.ChecksumAt(id)
			if err != nil {
				return false
			}
			sums[id.Seq] = s
		}
		trimAt := uint64(int(cut)%entries) + 1
		l.Trim(EntryID{Seq: trimAt})
		for seq := trimAt; seq <= uint64(entries); seq++ {
			got, err := l.ChecksumAt(EntryID{Seq: seq})
			if err != nil || got != sums[seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
