package txlog

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/netsim"
)

func newTestLog(t *testing.T, commit netsim.LatencyModel) *Log {
	t.Helper()
	svc := NewService(Config{Clock: clock.NewReal(), CommitLatency: commit})
	l, err := svc.CreateLog("s1")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendData(t *testing.T, l *Log, after EntryID, payload string) EntryID {
	t.Helper()
	id, err := l.Append(context.Background(), after, Entry{Type: EntryData, Payload: []byte(payload)})
	if err != nil {
		t.Fatalf("Append after %v: %v", after, err)
	}
	return id
}

func TestAppendAssignsSequentialIDs(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	id1 := appendData(t, l, ZeroID, "a")
	id2 := appendData(t, l, id1, "b")
	if id1.Seq != 1 || id2.Seq != 2 {
		t.Fatalf("ids = %v %v", id1, id2)
	}
	if l.CommittedTail() != id2 {
		t.Fatalf("tail = %v", l.CommittedTail())
	}
}

func TestConditionalAppendFailsOnStaleTail(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	id1 := appendData(t, l, ZeroID, "a")
	if _, err := l.Append(context.Background(), ZeroID, Entry{Type: EntryData}); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("err = %v, want ErrConditionFailed", err)
	}
	// Correct tail works.
	appendData(t, l, id1, "b")
}

func TestPipelinedAppendsCommitInOrder(t *testing.T) {
	l := newTestLog(t, netsim.NewUniform(100*time.Microsecond, 2*time.Millisecond, 3))
	const n = 50
	var pendings []*Pending
	after := ZeroID
	for i := 0; i < n; i++ {
		p, err := l.StartAppend(after, Entry{Type: EntryData, Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		after = p.ID()
		pendings = append(pendings, p)
	}
	// Waits complete out of order internally but each Wait implies its
	// prefix is committed.
	var wg sync.WaitGroup
	for _, p := range pendings {
		wg.Add(1)
		go func(p *Pending) {
			defer wg.Done()
			id, err := p.Wait(context.Background())
			if err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
			if l.CommittedTail().Seq < id.Seq {
				t.Errorf("Wait(%v) returned before commit watermark reached it", id)
			}
		}(p)
	}
	wg.Wait()
	if l.CommittedTail().Seq != n {
		t.Fatalf("tail = %v, want %d", l.CommittedTail(), n)
	}
}

func TestReaderSeesCommittedOrder(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	after := ZeroID
	for i := 0; i < 10; i++ {
		after = appendData(t, l, after, string(rune('a'+i)))
	}
	r := l.NewReader(ZeroID)
	for i := 0; i < 10; i++ {
		e, ok, err := r.TryNext()
		if err != nil || !ok {
			t.Fatalf("TryNext %d: %v %v", i, ok, err)
		}
		if string(e.Payload) != string(rune('a'+i)) {
			t.Fatalf("entry %d payload = %q", i, e.Payload)
		}
	}
	if _, ok, _ := r.TryNext(); ok {
		t.Fatal("read past tail")
	}
	if !r.CaughtUp() {
		t.Fatal("reader should be caught up")
	}
}

func TestReaderBlockingNext(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	r := l.NewReader(ZeroID)
	done := make(chan Entry, 1)
	go func() {
		e, err := r.Next(context.Background())
		if err != nil {
			return
		}
		done <- e
	}()
	time.Sleep(5 * time.Millisecond)
	appendData(t, l, ZeroID, "x")
	select {
	case e := <-done:
		if string(e.Payload) != "x" {
			t.Fatalf("payload = %q", e.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking reader never woke")
	}
}

func TestReaderNextContextCancel(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	r := l.NewReader(ZeroID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := r.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestLeadershipEpochMonotonic(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	id, err := l.Append(context.Background(), ZeroID, Entry{Type: EntryLeadership, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A duplicate/stale claim with the same epoch is rejected even at the
	// right tail.
	if _, err := l.Append(context.Background(), id, Entry{Type: EntryLeadership, Epoch: 1}); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("stale epoch accepted: %v", err)
	}
	if _, err := l.Append(context.Background(), id, Entry{Type: EntryLeadership, Epoch: 2}); err != nil {
		t.Fatalf("next epoch rejected: %v", err)
	}
	if l.CurrentEpoch() != 2 {
		t.Fatalf("epoch = %d", l.CurrentEpoch())
	}
}

func TestLeadershipRaceSingleWinner(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	tail := appendData(t, l, ZeroID, "w")
	var wins int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(epoch uint64) {
			defer wg.Done()
			_, err := l.Append(context.Background(), tail, Entry{Type: EntryLeadership, Epoch: epoch})
			if err == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}(uint64(i) + 1)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("wins = %d, want exactly 1", wins)
	}
}

func TestChecksumChaining(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	id1 := appendData(t, l, ZeroID, "abc")
	id2 := appendData(t, l, id1, "def")
	s1, err := l.ChecksumAt(id1)
	if err != nil {
		t.Fatal(err)
	}
	want := ChainChecksum(ChainChecksum(0, []byte("abc")), []byte("def"))
	_, got := l.RunningChecksum()
	if got != want {
		t.Fatalf("running checksum = %#x, want %#x", got, want)
	}
	if s2, _ := l.ChecksumAt(id2); s2 != want {
		t.Fatalf("ChecksumAt(id2) = %#x, want %#x", s2, want)
	}
	if ChainChecksum(s1, []byte("def")) != want {
		t.Fatal("chaining from prefix does not reproduce the running checksum")
	}
}

func TestChecksumEntryPayloadRoundTrip(t *testing.T) {
	if got := DecodeChecksumPayload(EncodeChecksumPayload(0xdeadbeefcafe)); got != 0xdeadbeefcafe {
		t.Fatalf("round trip = %#x", got)
	}
	if DecodeChecksumPayload([]byte("short")) != 0 {
		t.Fatal("bad payload must decode to 0")
	}
}

func TestTrim(t *testing.T) {
	// Five entries per segment, so ids[4] (seq 5) is a segment boundary:
	// entries 1-5 seal into one segment, 6-10 into a second.
	svc := NewService(Config{Clock: clock.NewReal(), SegmentEntries: 5})
	l, err := svc.CreateLog("s1")
	if err != nil {
		t.Fatal(err)
	}
	after := ZeroID
	var ids []EntryID
	for i := 0; i < 10; i++ {
		after = appendData(t, l, after, string(rune('0'+i)))
		ids = append(ids, after)
	}
	sumAt5, _ := l.ChecksumAt(ids[4])
	// Trimming mid-segment is a no-op: only whole sealed segments go.
	if n := l.Trim(ids[2]); n != 0 {
		t.Fatalf("mid-segment trim dropped %d segments, want 0", n)
	}
	if n := l.Trim(ids[4]); n != 1 {
		t.Fatalf("boundary trim dropped %d segments, want 1", n)
	}
	if base := l.TrimBase(); base != ids[4] {
		t.Fatalf("trim base = %v, want %v", base, ids[4])
	}
	// Reads before the trim point fail.
	r := l.NewReader(ZeroID)
	if _, _, err := r.TryNext(); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("err = %v, want ErrTrimmed", err)
	}
	// Reads after the trim point still work.
	r2 := l.NewReader(ids[4])
	e, ok, err := r2.TryNext()
	if err != nil || !ok || string(e.Payload) != "5" {
		t.Fatalf("TryNext after trim: %v %v %q", ok, err, e.Payload)
	}
	// Checksum at the trim point is preserved.
	if got, err := l.ChecksumAt(ids[4]); err != nil || got != sumAt5 {
		t.Fatalf("ChecksumAt(trim) = %#x %v, want %#x", got, err, sumAt5)
	}
	if _, err := l.ChecksumAt(ids[2]); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("ChecksumAt before trim: %v", err)
	}
	// Appends continue normally.
	appendData(t, l, ids[9], "new")
}

func TestServiceUnavailable(t *testing.T) {
	svc := NewService(Config{})
	l, _ := svc.CreateLog("s1")
	svc.SetUnavailable(true)
	if _, err := l.Append(context.Background(), ZeroID, Entry{Type: EntryData}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	svc.SetUnavailable(false)
	if _, err := l.Append(context.Background(), ZeroID, Entry{Type: EntryData}); err != nil {
		t.Fatalf("err after recovery = %v", err)
	}
}

func TestPerLogFailInjection(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	l.FailAppends(true)
	if _, err := l.Append(context.Background(), ZeroID, Entry{Type: EntryData}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	l.FailAppends(false)
	appendData(t, l, ZeroID, "ok")
}

func TestCreateDeleteLog(t *testing.T) {
	svc := NewService(Config{})
	if _, err := svc.CreateLog("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateLog("a"); err == nil {
		t.Fatal("duplicate CreateLog succeeded")
	}
	if err := svc.DeleteLog("a"); err != nil {
		t.Fatal(err)
	}
	if err := svc.DeleteLog("a"); !errors.Is(err, ErrNoSuchLog) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := svc.Log("a"); ok {
		t.Fatal("deleted log still resolvable")
	}
}

func TestAppendToDeletedLogFails(t *testing.T) {
	svc := NewService(Config{})
	l, _ := svc.CreateLog("a")
	svc.DeleteLog("a")
	if _, err := l.Append(context.Background(), ZeroID, Entry{Type: EntryData}); !errors.Is(err, ErrNoSuchLog) {
		t.Fatalf("err = %v", err)
	}
}

func TestGet(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	id := appendData(t, l, ZeroID, "x")
	e, ok := l.Get(id)
	if !ok || string(e.Payload) != "x" {
		t.Fatalf("Get = %v %v", e, ok)
	}
	if _, ok := l.Get(EntryID{Seq: 99}); ok {
		t.Fatal("Get past tail succeeded")
	}
}

func TestAZCopiesAccounting(t *testing.T) {
	svc := NewService(Config{AZCount: 3})
	l, _ := svc.CreateLog("s1")
	after := ZeroID
	for i := 0; i < 4; i++ {
		after = appendData(t, l, after, "x")
	}
	if got := l.AZCopies(); got != 12 {
		t.Fatalf("AZCopies = %d, want 12", got)
	}
}

func TestWaitAbandonedStillCommits(t *testing.T) {
	l := newTestLog(t, netsim.Fixed(20*time.Millisecond))
	p, err := l.StartAppend(ZeroID, Entry{Type: EntryData, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := p.Wait(ctx); err == nil {
		t.Fatal("expected cancelled wait")
	}
	// The entry still commits: the caller abandoned the wait, not the
	// append.
	deadline := time.Now().Add(time.Second)
	for l.CommittedTail() != p.ID() {
		if time.Now().After(deadline) {
			t.Fatal("abandoned append never committed")
		}
		time.Sleep(time.Millisecond)
	}
}
