package txlog

import (
	"context"
	"errors"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/netsim"
)

func newFaultService(t *testing.T, cfg Config) (*Service, *Log) {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	svc := NewService(cfg)
	l, err := svc.CreateLog("s1")
	if err != nil {
		t.Fatal(err)
	}
	return svc, l
}

func TestSingleAZDownAppendsCommitDegraded(t *testing.T) {
	svc, l := newFaultService(t, Config{CommitLatency: netsim.Zero{}})
	svc.AZ(0).SetDown(true)

	if svc.HealthyAZs() != 2 {
		t.Fatalf("HealthyAZs = %d, want 2", svc.HealthyAZs())
	}
	if !svc.Degraded() {
		t.Fatal("service with one AZ down should report degraded")
	}
	p, err := l.StartAppend(ZeroID, Entry{Type: EntryData, Payload: []byte("a")})
	if err != nil {
		t.Fatalf("append with one AZ down must succeed, got %v", err)
	}
	if p.Acks() != 2 || p.AZTotal() != 3 {
		t.Fatalf("acks = %d/%d, want 2/3", p.Acks(), p.AZTotal())
	}
	if _, err := p.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().DegradedAppends; got != 1 {
		t.Fatalf("DegradedAppends = %d, want 1", got)
	}
	// Degraded commits carry only the acked copies.
	if got := l.AZCopies(); got != 2 {
		t.Fatalf("AZCopies = %d, want 2", got)
	}
	served, dropped := svc.AZ(0).Acks()
	if served != 0 || dropped != 1 {
		t.Fatalf("down AZ acks = (%d served, %d dropped), want (0, 1)", served, dropped)
	}
}

func TestTwoAZsDownSurfacesUnavailable(t *testing.T) {
	svc, l := newFaultService(t, Config{CommitLatency: netsim.Zero{}})
	id1, err := l.Append(context.Background(), ZeroID, Entry{Type: EntryData, Payload: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	svc.AZ(0).SetDown(true)
	svc.AZ(1).SetDown(true)

	if svc.Degraded() {
		t.Fatal("below-quorum service is unavailable, not degraded")
	}
	_, err = l.StartAppend(id1, Entry{Type: EntryData, Payload: []byte("b")})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("append below quorum: err = %v, want ErrUnavailable", err)
	}
	if !IsTransient(err) {
		t.Fatal("ErrUnavailable must classify as transient")
	}
	// The failed append must not consume a sequence number: the identical
	// retry succeeds once a zone recovers.
	if tail := l.AssignedTail(); tail != id1 {
		t.Fatalf("failed append moved the tail to %v", tail)
	}
	svc.AZ(1).SetDown(false)
	if _, err := l.Append(context.Background(), id1, Entry{Type: EntryData, Payload: []byte("b")}); err != nil {
		t.Fatalf("retry after zone recovery failed: %v", err)
	}
}

func TestFlakyAZQuorumAbsorbsDrops(t *testing.T) {
	svc, l := newFaultService(t, Config{CommitLatency: netsim.Zero{}, Seed: 7})
	// One fully flaky zone: every append still reaches 2-of-3.
	svc.AZ(2).SetFlaky(1.0)
	after := ZeroID
	for i := 0; i < 20; i++ {
		p, err := l.StartAppend(after, Entry{Type: EntryData, Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatalf("append %d with one flaky AZ: %v", i, err)
		}
		if p.Acks() != 2 {
			t.Fatalf("append %d acks = %d, want 2", i, p.Acks())
		}
		after = p.ID()
	}
	if got := l.Stats().DegradedAppends; got != 20 {
		t.Fatalf("DegradedAppends = %d, want 20", got)
	}
	// Two fully flaky zones: below quorum on every draw.
	svc.AZ(1).SetFlaky(1.0)
	if _, err := l.StartAppend(after, Entry{Type: EntryData}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("append with two flaky AZs: err = %v, want ErrUnavailable", err)
	}
	// Healing restores full-strength commits.
	svc.AZ(1).SetFlaky(0)
	svc.AZ(2).SetFlaky(0)
	p, err := l.StartAppend(after, Entry{Type: EntryData})
	if err != nil {
		t.Fatal(err)
	}
	if p.Acks() != 3 {
		t.Fatalf("healed append acks = %d, want 3", p.Acks())
	}
}

func TestSlowAZBoundsCommitLatencyWhenInQuorum(t *testing.T) {
	const extra = 8 * time.Millisecond
	svc, l := newFaultService(t, Config{CommitLatency: netsim.Zero{}, SlowExtra: netsim.Fixed(extra)})

	// All three healthy: the slow zone's ack is the 3rd-fastest, outside
	// the 2-of-3 quorum, so commits stay fast.
	svc.AZ(2).SetSlow(true)
	start := time.Now()
	id1, err := l.Append(context.Background(), ZeroID, Entry{Type: EntryData, Payload: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= extra {
		t.Fatalf("slow zone outside the quorum raised commit latency to %v", d)
	}
	// One zone down: the slow zone is now the quorum-th ack and its extra
	// latency bounds the commit.
	svc.AZ(0).SetDown(true)
	start = time.Now()
	if _, err := l.Append(context.Background(), id1, Entry{Type: EntryData, Payload: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < extra {
		t.Fatalf("commit took %v, want >= %v (slow zone in the quorum)", d, extra)
	}
}

// TestTailReaderReconnectsAcrossOutage is the satellite coverage for tail
// readers: a whole-service outage surfaces ErrUnavailable, the cursor
// stays put, and after healing the reader resumes from the next
// undelivered sequence — every entry exactly once, no gaps, no
// duplicates.
func TestTailReaderReconnectsAcrossOutage(t *testing.T) {
	svc, l := newFaultService(t, Config{CommitLatency: netsim.Zero{}})
	after := ZeroID
	for i := 0; i < 10; i++ {
		after = appendData(t, l, after, "x")
	}

	r := l.NewReader(ZeroID)
	var got []uint64
	for i := 0; i < 5; i++ {
		e, ok, err := r.TryNext()
		if err != nil || !ok {
			t.Fatalf("read %d: ok=%v err=%v", i, ok, err)
		}
		got = append(got, e.ID.Seq)
	}

	svc.SetUnavailable(true)
	if _, _, err := r.TryNext(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("TryNext during outage: err = %v, want ErrUnavailable", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if _, err := r.Next(ctx); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Next during outage: err = %v, want ErrUnavailable", err)
	}
	cancel()
	// A below-quorum zone set is the same condition from the reader's side.
	svc.SetUnavailable(false)
	svc.AZ(0).SetDown(true)
	svc.AZ(1).SetDown(true)
	if _, _, err := r.TryNext(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("TryNext below quorum: err = %v, want ErrUnavailable", err)
	}
	svc.AZ(0).SetDown(false)
	svc.AZ(1).SetDown(false)

	// Service healed: more entries arrive, and the reader drains the rest
	// from where it left off.
	for i := 0; i < 5; i++ {
		after = appendData(t, l, after, "y")
	}
	for {
		e, ok, err := r.TryNext()
		if err != nil {
			t.Fatalf("read after heal: %v", err)
		}
		if !ok {
			break
		}
		got = append(got, e.ID.Seq)
	}
	if len(got) != 15 {
		t.Fatalf("delivered %d entries, want 15", len(got))
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d: gap or duplicate across the outage", i, seq)
		}
	}
}

// TestQuorumConfigOverride checks a stricter write quorum is honored.
func TestQuorumConfigOverride(t *testing.T) {
	svc, l := newFaultService(t, Config{CommitLatency: netsim.Zero{}, Quorum: 3})
	if _, err := l.Append(context.Background(), ZeroID, Entry{Type: EntryData}); err != nil {
		t.Fatal(err)
	}
	svc.AZ(0).SetDown(true)
	if _, err := l.StartAppend(EntryID{Seq: 1}, Entry{Type: EntryData}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("append under quorum=3 with one AZ down: err = %v, want ErrUnavailable", err)
	}
}
