package txlog

import "context"

// Reader is a tailing cursor over a log's committed entries. Replicas hold
// one reader each and stream the replication records into their engine.
// Every read re-verifies the record's append-time CRC before returning
// it: a reader can never hand out a torn or bit-rotted payload — a
// mismatch quarantines the segment and the read fails with
// ErrCorruptSegment, cursor unchanged.
type Reader struct {
	log *Log
	pos uint64 // Seq of the last entry returned
}

// NewReader returns a reader positioned after from (pass ZeroID to read
// from the beginning, or a snapshot's log position to replay the suffix).
func (l *Log) NewReader(from EntryID) *Reader {
	return &Reader{log: l, pos: from.Seq}
}

// Position returns the ID of the last entry this reader consumed.
func (r *Reader) Position() EntryID { return EntryID{Seq: r.pos} }

// CaughtUp reports whether the reader has consumed every committed entry —
// the control signal that makes a replica eligible for promotion (§4.1.2).
func (r *Reader) CaughtUp() bool {
	return r.pos >= r.log.CommittedTail().Seq
}

// TryNext returns the next committed entry without blocking. During a
// service outage (or a below-quorum zone set) it fails with the transient
// ErrUnavailable: the cursor is unchanged, so the caller reconnects by
// simply retrying later — no gaps, no duplicates. A cursor behind the
// trim point fails with ErrTrimmed and a cursor entering a quarantined
// segment with ErrCorruptSegment — both fatal: the caller re-bootstraps
// from a snapshot instead of retrying.
func (r *Reader) TryNext() (Entry, bool, error) {
	l := r.log
	if err := l.svc.readErr(); err != nil {
		return Entry{}, false, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.pos < l.trimBase() {
		return Entry{}, false, ErrTrimmed
	}
	if r.pos >= l.committed {
		return Entry{}, false, nil
	}
	seq := r.pos + 1
	s := l.segFor(seq)
	if s == nil {
		return Entry{}, false, ErrTrimmed
	}
	if !l.verifyRecordLocked(s, seq) {
		return Entry{}, false, ErrCorruptSegment
	}
	e := *s.entry(seq)
	r.pos = seq
	e.Epoch = e.EpochValue()
	return e, true, nil
}

// Next blocks until a committed entry past the cursor is available, the
// context is cancelled, or the log is destroyed. Like TryNext it surfaces
// a service outage as ErrUnavailable with the cursor unchanged, and trim
// or quarantine as the fatal ErrTrimmed / ErrCorruptSegment.
func (r *Reader) Next(ctx context.Context) (Entry, error) {
	for {
		l := r.log
		if err := l.svc.readErr(); err != nil {
			return Entry{}, err
		}
		l.mu.Lock()
		if r.pos < l.trimBase() {
			l.mu.Unlock()
			return Entry{}, ErrTrimmed
		}
		if l.closed {
			l.mu.Unlock()
			return Entry{}, ErrNoSuchLog
		}
		if r.pos < l.committed {
			seq := r.pos + 1
			s := l.segFor(seq)
			if s == nil {
				l.mu.Unlock()
				return Entry{}, ErrTrimmed
			}
			if !l.verifyRecordLocked(s, seq) {
				l.mu.Unlock()
				return Entry{}, ErrCorruptSegment
			}
			e := *s.entry(seq)
			r.pos = seq
			l.mu.Unlock()
			e.Epoch = e.EpochValue()
			return e, nil
		}
		wake := l.commitWake
		l.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return Entry{}, ctx.Err()
		}
	}
}
