package txlog

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/faultpoint"
	"memorydb/internal/netsim"
)

// segTestLog builds a log over a service with a small entry threshold so
// rotation and sealing happen within a handful of appends.
func segTestLog(t *testing.T, cfg Config) *Log {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	svc := NewService(cfg)
	l, err := svc.CreateLog("s1")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSegmentRotationAndSeal(t *testing.T) {
	l := segTestLog(t, Config{SegmentEntries: 4})
	after := ZeroID
	for i := 0; i < 10; i++ {
		after = appendData(t, l, after, "payload")
	}
	st := l.SegmentStats()
	if st.Sealed != 2 || st.SealedLive != 2 {
		t.Fatalf("sealed = %d live-sealed = %d, want 2/2", st.Sealed, st.SealedLive)
	}
	if st.LiveSegments != 3 { // two sealed + the active one
		t.Fatalf("live segments = %d, want 3", st.LiveSegments)
	}
	if st.LiveEntries != 10 {
		t.Fatalf("live entries = %d, want 10", st.LiveEntries)
	}
	// Reads cross segment boundaries transparently.
	r := l.NewReader(ZeroID)
	for seq := uint64(1); seq <= 10; seq++ {
		e, ok, err := r.TryNext()
		if err != nil || !ok || e.ID.Seq != seq {
			t.Fatalf("TryNext at %d: %v %v %v", seq, e.ID, ok, err)
		}
	}
	// ChecksumAt works at and across boundaries.
	if _, err := l.ChecksumAt(EntryID{Seq: 4}); err != nil {
		t.Fatalf("ChecksumAt(boundary): %v", err)
	}
	if _, err := l.ChecksumAt(EntryID{Seq: 7}); err != nil {
		t.Fatalf("ChecksumAt(mid): %v", err)
	}
}

func TestSegmentRotationByBytes(t *testing.T) {
	l := segTestLog(t, Config{SegmentEntries: 1 << 20, SegmentBytes: 64})
	after := ZeroID
	for i := 0; i < 6; i++ {
		after = appendData(t, l, after, strings.Repeat("x", 40)) // 2 entries/segment
	}
	if st := l.SegmentStats(); st.Sealed != 3 {
		t.Fatalf("sealed = %d, want 3 (40-byte payloads against a 64-byte threshold)", st.Sealed)
	}
}

func TestCorruptRecordQuarantine(t *testing.T) {
	var mu sync.Mutex
	var alarms []string
	l := segTestLog(t, Config{SegmentEntries: 4, AlarmFn: func(msg string) {
		mu.Lock()
		alarms = append(alarms, msg)
		mu.Unlock()
	}})
	after := ZeroID
	for i := 0; i < 8; i++ {
		after = appendData(t, l, after, "payload")
	}
	if !l.DamageRecord(3) {
		t.Fatal("DamageRecord(3) failed")
	}
	r := l.NewReader(ZeroID)
	for seq := uint64(1); seq <= 2; seq++ {
		if _, ok, err := r.TryNext(); !ok || err != nil {
			t.Fatalf("read %d: %v %v", seq, ok, err)
		}
	}
	if _, _, err := r.TryNext(); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("read of damaged record: err = %v, want ErrCorruptSegment", err)
	}
	if st := l.SegmentStats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	mu.Lock()
	na := len(alarms)
	mu.Unlock()
	if na != 1 || !strings.Contains(alarms[0], "quarantined segment [1,4]") {
		t.Fatalf("alarms = %v", alarms)
	}
	// The whole segment is condemned: an undamaged neighbour is
	// unreadable too, and ChecksumAt inside the segment fails loudly.
	if _, ok := l.Get(EntryID{Seq: 2}); ok {
		t.Fatal("Get inside quarantined segment must fail")
	}
	if _, err := l.ChecksumAt(EntryID{Seq: 2}); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("ChecksumAt in quarantined segment: %v", err)
	}
	// The intact suffix still serves: a reader positioned past the
	// quarantined segment (as after a snapshot re-bootstrap) reads on.
	r2 := l.NewReader(EntryID{Seq: 4})
	for seq := uint64(5); seq <= 8; seq++ {
		e, ok, err := r2.TryNext()
		if err != nil || !ok || e.ID.Seq != seq {
			t.Fatalf("suffix read at %d: %v %v %v", seq, e.ID, ok, err)
		}
	}
	// Appends continue (the primary's path does not read old segments).
	appendData(t, l, after, "more")
}

func TestCorruptRecordFaultpoint(t *testing.T) {
	faults := faultpoint.New(1)
	l := segTestLog(t, Config{SegmentEntries: 100, Faults: faults})
	// Corrupt the 3rd data append's stored payload, silently.
	faults.Arm(faultpoint.SiteLogCorruptRecord, faultpoint.Corrupt, 2)
	after := ZeroID
	for i := 0; i < 5; i++ {
		after = appendData(t, l, after, "payload")
	}
	if got := faults.Fired(faultpoint.SiteLogCorruptRecord, faultpoint.Corrupt); got != 1 {
		t.Fatalf("corrupt_record fired = %d, want 1", got)
	}
	r := l.NewReader(ZeroID)
	var sawCorrupt bool
	for i := 0; i < 5; i++ {
		_, ok, err := r.TryNext()
		if errors.Is(err, ErrCorruptSegment) {
			sawCorrupt = true
			break
		}
		if err != nil || !ok {
			t.Fatalf("read %d: %v %v", i, ok, err)
		}
	}
	if !sawCorrupt {
		t.Fatal("reader never detected the silently corrupted record")
	}
	if st := l.SegmentStats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
}

func TestRecoverChainQuarantinesDamagedSealedSegment(t *testing.T) {
	l := segTestLog(t, Config{SegmentEntries: 4})
	after := ZeroID
	for i := 0; i < 12; i++ {
		after = appendData(t, l, after, "payload")
	}
	if !l.DamageRecord(6) { // inside the second sealed segment [5,8]
		t.Fatal("DamageRecord(6) failed")
	}
	q, trunc := l.RecoverChain()
	if q != 1 || trunc != 0 {
		t.Fatalf("RecoverChain = (%d quarantined, %d truncated), want (1, 0)", q, trunc)
	}
	// Undamaged segments still verify and serve.
	r := l.NewReader(ZeroID)
	for seq := uint64(1); seq <= 4; seq++ {
		if _, ok, err := r.TryNext(); !ok || err != nil {
			t.Fatalf("read %d after recovery: %v %v", seq, ok, err)
		}
	}
	if _, _, err := r.TryNext(); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("read into quarantined segment: %v", err)
	}
	// A second pass is idempotent.
	if q, _ := l.RecoverChain(); q != 0 {
		t.Fatalf("second RecoverChain quarantined %d more", q)
	}
}

func TestRecoverChainTruncatesTornTail(t *testing.T) {
	// Slow commits: StartAppend assigns instantly, commits land 30ms
	// later — RecoverChain runs in between, like a service restart with
	// un-replicated tail entries.
	l := segTestLog(t, Config{SegmentEntries: 4, CommitLatency: netsim.Fixed(30 * time.Millisecond)})
	var last *Pending
	after := ZeroID
	for i := 0; i < 3; i++ {
		p, err := l.StartAppend(after, Entry{Type: EntryData, Payload: []byte("torn")})
		if err != nil {
			t.Fatal(err)
		}
		after = p.ID()
		last = p
	}
	if got := l.AssignedTail().Seq; got != 3 {
		t.Fatalf("assigned tail = %d", got)
	}
	q, trunc := l.RecoverChain()
	if q != 0 || trunc != 3 {
		t.Fatalf("RecoverChain = (%d, %d), want (0, 3)", q, trunc)
	}
	if a, c := l.AssignedTail().Seq, l.CommittedTail().Seq; a != 0 || c != 0 {
		t.Fatalf("after truncation assigned=%d committed=%d, want 0/0", a, c)
	}
	if st := l.SegmentStats(); st.TornTruncated != 3 {
		t.Fatalf("TornTruncated = %d, want 3", st.TornTruncated)
	}
	// The log accepts appends from the truncated tail.
	appendData(t, l, ZeroID, "fresh")
	// Orphaned commit goroutines drain without reviving torn entries.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := last.Wait(ctx); err != nil {
		t.Fatalf("orphan Wait: %v", err)
	}
	if got := l.CommittedTail().Seq; got != 1 {
		t.Fatalf("committed after orphan drain = %d, want 1", got)
	}
}

func TestSealFaultpointsDeferAndRetry(t *testing.T) {
	faults := faultpoint.New(1)
	l := segTestLog(t, Config{SegmentEntries: 2, Faults: faults})
	// First seal attempt dies before the footer write; the segment stays
	// unsealed until a later commit retries.
	faults.Arm(faultpoint.SiteLogSealPre, faultpoint.Error, 0)
	after := ZeroID
	after = appendData(t, l, after, "a")
	after = appendData(t, l, after, "b")
	st := l.SegmentStats()
	if st.SealsDeferred != 1 || st.Sealed != 0 {
		t.Fatalf("after deferred seal: deferred=%d sealed=%d, want 1/0", st.SealsDeferred, st.Sealed)
	}
	// Untrimmable while unsealed.
	if n := l.Trim(after); n != 0 {
		t.Fatalf("trim of unsealed segment dropped %d", n)
	}
	// The next commit retries the seal.
	after = appendData(t, l, after, "c")
	appendData(t, l, after, "d")
	if st := l.SegmentStats(); st.Sealed != 2 {
		t.Fatalf("sealed after retry = %d, want 2", st.Sealed)
	}
	if got := faults.Hits(faultpoint.SiteLogSealPre); got < 3 {
		t.Fatalf("seal.pre hits = %d, want >= 3", got)
	}
	if got := faults.Hits(faultpoint.SiteLogSealPost); got != 2 {
		t.Fatalf("seal.post hits = %d, want 2", got)
	}
}

func TestTrimFaultpointDefers(t *testing.T) {
	faults := faultpoint.New(1)
	l := segTestLog(t, Config{SegmentEntries: 2, Faults: faults})
	after := ZeroID
	for i := 0; i < 4; i++ {
		after = appendData(t, l, after, "x")
	}
	faults.Arm(faultpoint.SiteLogTrimPre, faultpoint.Error, 0)
	if n := l.Trim(after); n != 0 {
		t.Fatalf("faulted trim dropped %d segments", n)
	}
	if st := l.SegmentStats(); st.TrimsDeferred != 1 {
		t.Fatalf("TrimsDeferred = %d, want 1", st.TrimsDeferred)
	}
	// Retry succeeds and fires trim.post (the deferred attempt aborted
	// before reaching it).
	if n := l.Trim(after); n != 2 {
		t.Fatalf("retried trim dropped %d segments, want 2", n)
	}
	if got := faults.Hits(faultpoint.SiteLogTrimPost); got != 1 {
		t.Fatalf("trim.post hits = %d, want 1", got)
	}
}

func TestCorruptSealedFooterCaughtOnRecover(t *testing.T) {
	faults := faultpoint.New(1)
	l := segTestLog(t, Config{SegmentEntries: 2, Faults: faults})
	faults.Arm(faultpoint.SiteLogSealPre, faultpoint.Corrupt, 0)
	after := ZeroID
	for i := 0; i < 4; i++ {
		after = appendData(t, l, after, "x")
	}
	// The bad footer is latent until the restart verification pass.
	if q, _ := l.RecoverChain(); q != 1 {
		t.Fatalf("RecoverChain quarantined %d segments, want 1 (corrupt footer)", q)
	}
}

func TestAZSegmentResync(t *testing.T) {
	cfg := Config{SegmentEntries: 4, Clock: clock.NewReal()}
	svc := NewService(cfg)
	l, err := svc.CreateLog("s1")
	if err != nil {
		t.Fatal(err)
	}
	after := ZeroID
	for i := 0; i < 8; i++ { // two seals, all zones up
		after = appendData(t, l, after, "p")
	}
	svc.AZ(2).SetDown(true)
	for i := 0; i < 8; i++ { // two seals missed by az-3
		after = appendData(t, l, after, "p")
	}
	if held, missing, _ := svc.AZ(2).Segments(); held != 2 || missing != 2 {
		t.Fatalf("down zone: held=%d missing=%d, want 2/2", held, missing)
	}
	if held, missing, _ := svc.AZ(0).Segments(); held != 4 || missing != 0 {
		t.Fatalf("up zone: held=%d missing=%d, want 4/0", held, missing)
	}
	svc.AZ(2).SetDown(false)
	// A healed zone catches up by whole segments on the next seal…
	for i := 0; i < 4; i++ {
		after = appendData(t, l, after, "p")
	}
	held, missing, resynced := svc.AZ(2).Segments()
	if held != 5 || missing != 0 || resynced != 2 {
		t.Fatalf("healed zone: held=%d missing=%d resynced=%d, want 5/0/2", held, missing, resynced)
	}
	// …or eagerly via ResyncSegments.
	svc.AZ(1).SetDown(true)
	for i := 0; i < 4; i++ {
		after = appendData(t, l, after, "p")
	}
	svc.AZ(1).SetDown(false)
	if n := svc.AZ(1).ResyncSegments(); n != 1 {
		t.Fatalf("eager resync copied %d segments, want 1", n)
	}
	if _, missing, _ := svc.AZ(1).Segments(); missing != 0 {
		t.Fatalf("missing after eager resync = %d", missing)
	}
}
