package txlog

import (
	"context"
	"testing"

	"memorydb/internal/netsim"
)

// TestStatsCountRecordsPerEntry checks the per-log append counters that
// make group commit observable: record totals, payload bytes, the max
// batch size, and the power-of-two batch-size histogram.
func TestStatsCountRecordsPerEntry(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	after := ZeroID
	// Three data entries: 1 record (implicit), 3 records, 8 records.
	for _, e := range []Entry{
		{Type: EntryData, Payload: []byte("a")},
		{Type: EntryData, Payload: []byte("bcd"), Records: 3},
		{Type: EntryData, Payload: []byte("efghijkl"), Records: 8},
	} {
		id, err := l.Append(context.Background(), after, e)
		if err != nil {
			t.Fatal(err)
		}
		after = id
	}
	// One non-data entry: counted as an append, not as data.
	if _, err := l.Append(context.Background(), after, Entry{Type: EntryLease}); err != nil {
		t.Fatal(err)
	}

	s := l.Stats()
	if s.Appends != 4 || s.DataAppends != 3 {
		t.Fatalf("Appends=%d DataAppends=%d, want 4/3", s.Appends, s.DataAppends)
	}
	if s.Records != 1+3+8 {
		t.Fatalf("Records = %d, want 12", s.Records)
	}
	if s.PayloadBytes != int64(len("a")+len("bcd")+len("efghijkl")) {
		t.Fatalf("PayloadBytes = %d", s.PayloadBytes)
	}
	if s.MaxRecordsPerEntry != 8 {
		t.Fatalf("MaxRecordsPerEntry = %d, want 8", s.MaxRecordsPerEntry)
	}
	// Histogram: 1 → bucket 0, 3 → bucket 1, 8 → bucket 3.
	want := [8]int64{1, 1, 0, 1}
	if s.RecordsPerEntry != want {
		t.Fatalf("RecordsPerEntry = %v, want %v", s.RecordsPerEntry, want)
	}
	if mean := s.MeanRecordsPerEntry(); mean != 4 {
		t.Fatalf("MeanRecordsPerEntry = %v, want 4", mean)
	}
}

// TestStatsIgnoreFailedAppends: a conditionally-rejected append must not
// contribute to the counters.
func TestStatsIgnoreFailedAppends(t *testing.T) {
	l := newTestLog(t, netsim.Zero{})
	appendData(t, l, ZeroID, "a")
	if _, err := l.Append(context.Background(), ZeroID, Entry{Type: EntryData, Records: 5}); err == nil {
		t.Fatal("stale append unexpectedly succeeded")
	}
	s := l.Stats()
	if s.Appends != 1 || s.Records != 1 {
		t.Fatalf("failed append leaked into stats: %+v", s)
	}
}
