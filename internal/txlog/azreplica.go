package txlog

import (
	"fmt"
	"sync"
	"time"

	"memorydb/internal/netsim"
	"memorydb/internal/obs"
)

// AZReplica simulates one availability zone's copy of the transaction log
// service. The paper's log commits an entry once a quorum of AZ replicas
// has durably acknowledged it (§3, §4.2): with 3 AZs and a 2-of-3 quorum,
// one zone can be down, flaky, or slow without making the service
// unavailable — it only changes which acknowledgements bound the commit
// latency. Faults are injected per replica:
//
//   - down: the zone never acknowledges (outage);
//   - flaky: each acknowledgement is independently dropped with a seeded
//     probability (grey failure);
//   - slow: acknowledgements arrive after extra latency (degraded zone).
//
// One AZ down shifts the commit latency from the 2nd-fastest of 3 acks to
// the slower of the remaining 2; two AZs down drops the service below
// quorum and appends fail with ErrUnavailable until a zone recovers.
type AZReplica struct {
	name    string
	latency netsim.LatencyModel // per-ack latency draw
	slowLat netsim.LatencyModel // extra latency while slow
	down    netsim.Flag
	slow    netsim.Flag
	flaky   *netsim.Prob

	mu sync.Mutex
	// acksDropped counts acknowledgements lost to down/flaky injection;
	// acksServed counts delivered ones (observability for tests).
	acksDropped int64
	acksServed  int64

	// Segment-granular zone state: every sealed segment is copied to each
	// zone; a down zone misses seals and resyncs whole segments once
	// healthy (on the next seal, or eagerly via ResyncSegments).
	segsHeld     int64
	segsMissing  int64
	segsResynced int64

	// ackLatency records every served acknowledgement's latency draw.
	// Always on: a flaky or slow AZ is identified by comparing the three
	// zones' distributions (and drop counts) in CLUSTER INFO / metrics.
	ackLatency obs.Histogram
}

func newAZReplica(i int, lat, slowLat netsim.LatencyModel, seed int64) *AZReplica {
	return &AZReplica{
		name:    fmt.Sprintf("az-%d", i+1),
		latency: lat,
		slowLat: slowLat,
		flaky:   netsim.NewProb(0, seed),
	}
}

// Name returns the zone label ("az-1"…).
func (a *AZReplica) Name() string { return a.name }

// SetDown injects (or clears) a full outage of this zone's replica.
func (a *AZReplica) SetDown(on bool) { a.down.Set(on) }

// Down reports whether the zone is currently down.
func (a *AZReplica) Down() bool { return a.down.On() }

// SetFlaky makes the zone drop each acknowledgement independently with
// probability p (0 heals it). Draws are deterministic under the service
// seed, so fixed-seed chaos schedules reproduce.
func (a *AZReplica) SetFlaky(p float64) { a.flaky.SetP(p) }

// SetSlow injects (or clears) degraded latency: acknowledgements still
// arrive, but pay the service's SlowExtra model on top of the base draw.
func (a *AZReplica) SetSlow(on bool) { a.slow.Set(on) }

// AckLatency exposes the zone's served-acknowledgement latency
// histogram (cluster introspection and the metrics endpoint read it).
func (a *AZReplica) AckLatency() *obs.Histogram { return &a.ackLatency }

// Acks returns (served, dropped) acknowledgement counts.
func (a *AZReplica) Acks() (served, dropped int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acksServed, a.acksDropped
}

// noteSeal records one sealed segment against this zone. An up zone
// first catches up on every segment it missed while down (the
// segment-granular background copy a real log service would stream),
// then stores the new one; a down zone falls one segment further behind.
func (a *AZReplica) noteSeal() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.down.On() {
		a.segsMissing++
		return
	}
	if a.segsMissing > 0 {
		a.segsHeld += a.segsMissing
		a.segsResynced += a.segsMissing
		a.segsMissing = 0
	}
	a.segsHeld++
}

// ResyncSegments eagerly copies every missed segment to a healthy zone
// (a healed zone's catch-up pass). Returns how many were copied; 0 when
// the zone is still down or already current.
func (a *AZReplica) ResyncSegments() int64 {
	if a.down.On() {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.segsMissing
	a.segsHeld += n
	a.segsResynced += n
	a.segsMissing = 0
	return n
}

// Segments returns the zone's segment-granular state: sealed segments
// held, currently missing (zone lagging), and resynced over its lifetime.
func (a *AZReplica) Segments() (held, missing, resynced int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.segsHeld, a.segsMissing, a.segsResynced
}

// ack draws one append acknowledgement: ok=false means the zone did not
// acknowledge (down or flaky drop); otherwise d is the simulated time for
// this zone's durable ack.
func (a *AZReplica) ack() (d time.Duration, ok bool) {
	if a.down.On() || a.flaky.Hit() {
		a.mu.Lock()
		a.acksDropped++
		a.mu.Unlock()
		return 0, false
	}
	d = a.latency.Sample()
	if a.slow.On() {
		d += a.slowLat.Sample()
	}
	a.mu.Lock()
	a.acksServed++
	a.mu.Unlock()
	a.ackLatency.Observe(d)
	return d, true
}
