package bench

import (
	"context"
	"fmt"
	"time"

	"memorydb/internal/baseline"
	"memorydb/internal/clock"
	"memorydb/internal/core"
	"memorydb/internal/crc16"
	"memorydb/internal/election"
	"memorydb/internal/netsim"
	"memorydb/internal/txlog"
)

// Target is a system under test: a real MemoryDB or Redis-mode node with
// the instance-type capacity model in front of the engine.
type Target struct {
	Sys System
	IT  InstanceType

	node  *core.Node
	bnode *baseline.Node
	log   *txlog.Log

	// shards is the node's execution-shard count; pacers models the
	// engine as that many single-threaded service lanes (capped at the
	// instance's vCPUs), routed by key slot exactly like the node routes
	// commands. One shard = the classic single-engine queue.
	shards    int
	pacers    []Pacer
	readCost  time.Duration
	writeCost time.Duration

	closers []func()
}

// DefaultCommitLatency is the multi-AZ quorum commit model used by the
// benchmarks: ~2.2 ms base with an exponential tail, yielding ~3 ms
// median and mid-single-digit-millisecond p99 write latencies under
// load, matching §6.1.2.2.
func DefaultCommitLatency() netsim.LatencyModel {
	return netsim.NewLogNormalish(2200*time.Microsecond, 500*time.Microsecond, 7)
}

// NewTarget builds a target for the given system and instance type with
// the default group-commit settings and a single execution shard (the
// classic single-workloop configuration, so existing comparisons are
// unaffected by the host's GOMAXPROCS).
func NewTarget(sys System, it InstanceType) (*Target, error) {
	return NewTargetBatch(sys, it, 0)
}

// NewTargetBatch is NewTarget with an explicit group-commit batch cap for
// the MemoryDB node (0 = core default, 1 = per-mutation legacy appends).
func NewTargetBatch(sys System, it InstanceType, batch int) (*Target, error) {
	return NewTargetShards(sys, it, batch, 1)
}

// NewTargetShards is NewTargetBatch with an explicit execution-shard
// count for the MemoryDB node. The capacity model gives each shard its
// own single-threaded service lane (the engine parallelism sharding
// buys), capped at the instance's vCPUs; the commit path is the real
// sharded node, so append pipelining across shard buffers is measured,
// not modeled.
func NewTargetShards(sys System, it InstanceType, batch, shards int) (*Target, error) {
	if shards < 1 {
		shards = 1
	}
	t := &Target{Sys: sys, IT: it, shards: shards}
	lanes := shards
	if lanes > it.VCPUs {
		lanes = it.VCPUs
	}
	t.pacers = make([]Pacer, lanes)
	t.readCost = CostFor(Capacity(sys, OpRead, it))
	t.writeCost = CostFor(Capacity(sys, OpWrite, it))
	switch sys {
	case SystemMemoryDB:
		svc := txlog.NewService(txlog.Config{
			Clock:         clock.NewReal(),
			CommitLatency: DefaultCommitLatency(),
		})
		log, err := svc.CreateLog("bench-shard")
		if err != nil {
			return nil, err
		}
		n, err := core.NewNode(core.Config{
			NodeID:  "bench-primary",
			ShardID: "bench-shard",
			Log:     log,
			Lease:   500 * time.Millisecond, Backoff: 650 * time.Millisecond,
			RenewEvery:      100 * time.Millisecond,
			MaxBatchRecords: batch,
			Shards:          shards,
		})
		if err != nil {
			return nil, err
		}
		n.Start()
		t.node = n
		t.log = log
		t.closers = append(t.closers, n.Stop)
		deadline := time.Now().Add(5 * time.Second)
		for n.Role() != election.RolePrimary {
			if time.Now().After(deadline) {
				n.Stop()
				return nil, fmt.Errorf("bench: node never became primary")
			}
			time.Sleep(time.Millisecond)
		}
	case SystemRedis:
		n := baseline.NewPrimary(baseline.Config{NodeID: "bench-redis"})
		t.bnode = n
		t.closers = append(t.closers, n.Stop)
	}
	return t, nil
}

// LogStats returns the transaction-log append counters (group-commit
// observability); ok is false for targets without a log (Redis mode).
func (t *Target) LogStats() (txlog.Stats, bool) {
	if t.log == nil {
		return txlog.Stats{}, false
	}
	return t.log.Stats(), true
}

// Close tears the target down.
func (t *Target) Close() {
	for _, c := range t.closers {
		c()
	}
}

// Prefill loads n keys of valueBytes each so reads hit (§6.1.1 pre-fills
// 1M keys; scale with the run length you can afford).
func (t *Target) Prefill(ctx context.Context, n, valueBytes int) error {
	val := make([]byte, valueBytes)
	for i := range val {
		val[i] = 'x'
	}
	const batch = 500
	for base := 0; base < n; base += batch {
		var cmds [][][]byte
		for i := base; i < base+batch && i < n; i++ {
			cmds = append(cmds, [][]byte{[]byte("SET"), benchKey(i), val})
		}
		if t.node != nil {
			if _, err := t.node.DoBatch(ctx, cmds); err != nil {
				return err
			}
		} else {
			for _, argv := range cmds {
				if _, err := t.bnode.Do(ctx, argv); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func benchKey(i int) []byte {
	return []byte(fmt.Sprintf("key:%08d", i))
}

// Op issues one operation: the instance model charges engine time, then
// the real node executes it (including, for MemoryDB writes, the real
// transaction-log commit wait). It returns the client-perceived latency.
func (t *Target) Op(ctx context.Context, kind OpKind, keyIdx int, val []byte) (time.Duration, error) {
	start := time.Now()
	cost := t.readCost
	key := benchKey(keyIdx)
	var argv [][]byte
	if kind == OpWrite {
		cost = t.writeCost
		argv = [][]byte{[]byte("SET"), key, val}
	} else {
		argv = [][]byte{[]byte("GET"), key}
	}
	// Route the op to its shard's service lane by key slot, mirroring the
	// node's own routing; with one shard this is the classic single queue.
	lane := 0
	if len(t.pacers) > 1 {
		lane = core.ShardOfSlot(crc16.Slot(string(key)), t.shards) % len(t.pacers)
	}
	// Sub-200µs waits are absorbed rather than slept: Go timer overshoot
	// at that granularity would dominate the measurement. The pacer's
	// virtual queue still advances by the full cost, so capacity is
	// enforced — short waits simply accumulate until they are worth a
	// real sleep.
	if wait := t.pacers[lane].Reserve(start, cost); wait > 200*time.Microsecond {
		time.Sleep(wait)
	}
	var err error
	if t.node != nil {
		_, err = t.node.Do(ctx, argv)
	} else {
		_, err = t.bnode.Do(ctx, argv)
	}
	return time.Since(start), err
}
