package bench

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Workload describes the client mix of §6.1.1: Read Only, Write Only, or
// 80/20 Read-Write.
type Workload struct {
	Name       string
	ReadRatio  float64 // fraction of GETs
	ValueBytes int
	Keys       int
}

// The three paper workloads (value size 100 B).
var (
	WorkloadReadOnly  = Workload{Name: "read-only", ReadRatio: 1.0, ValueBytes: 100, Keys: 10000}
	WorkloadWriteOnly = Workload{Name: "write-only", ReadRatio: 0.0, ValueBytes: 100, Keys: 10000}
	WorkloadMixed8020 = Workload{Name: "mixed-80/20", ReadRatio: 0.8, ValueBytes: 100, Keys: 10000}
)

// RunClosedLoop drives clients back-to-back requests (no pipelining,
// like redis-benchmark) for the duration and returns the digest. This is
// the Figure 4 "maximum throughput" measurement.
func RunClosedLoop(ctx context.Context, t *Target, w Workload, clients int, duration time.Duration) Summary {
	rec := &Recorder{}
	val := make([]byte, w.ValueBytes)
	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(stop) {
				kind := OpWrite
				if rng.Float64() < w.ReadRatio {
					kind = OpRead
				}
				d, err := t.Op(ctx, kind, rng.Intn(w.Keys), val)
				if err != nil {
					rec.RecordErr()
					continue
				}
				rec.Record(d)
			}
		}(int64(c) + 1)
	}
	wg.Wait()
	return rec.Summarize(duration)
}

// PipelineSummary extends Summary with the transaction-log batching
// metrics of a pipelined write run.
type PipelineSummary struct {
	Summary
	// Entries is the number of data entries (quorum round-trips) the run
	// appended; Records is the number of mutation records they carried.
	Entries int64
	Records int64
	// RecordsPerEntry is Records/Entries — the group-commit amortization
	// factor (1.0 means every mutation paid its own quorum round-trip).
	RecordsPerEntry float64
}

// RunPipelined drives a pipelined write workload: clients issue mutations
// back-to-back and concurrently, so the primary's workloop keeps executing
// while quorum appends are in flight and group commit can coalesce the
// effects. The returned summary includes the observed records-per-entry
// from the transaction log's own counters.
func RunPipelined(ctx context.Context, t *Target, w Workload, clients int, duration time.Duration) PipelineSummary {
	before, hasLog := t.LogStats()
	sum := RunClosedLoop(ctx, t, w, clients, duration)
	ps := PipelineSummary{Summary: sum, RecordsPerEntry: 1}
	if after, ok := t.LogStats(); ok && hasLog {
		ps.Entries = after.DataAppends - before.DataAppends
		ps.Records = after.Records - before.Records
		if ps.Entries > 0 {
			ps.RecordsPerEntry = float64(ps.Records) / float64(ps.Entries)
		}
	}
	return ps
}

// RunOffered drives an open-loop offered rate (ops/sec) split across
// clients, recording latencies — the Figure 5 sweep. Clients fall behind
// rather than queue unboundedly when the system saturates, mirroring a
// real load generator.
func RunOffered(ctx context.Context, t *Target, w Workload, offered float64, clients int, duration time.Duration) Summary {
	rec := &Recorder{}
	val := make([]byte, w.ValueBytes)
	perClient := offered / float64(clients)
	interval := time.Duration(float64(time.Second) / perClient)
	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			next := time.Now().Add(time.Duration(rng.Int63n(int64(interval))))
			for time.Now().Before(stop) {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
				kind := OpWrite
				if rng.Float64() < w.ReadRatio {
					kind = OpRead
				}
				d, err := t.Op(ctx, kind, rng.Intn(w.Keys), val)
				if err != nil {
					rec.RecordErr()
					continue
				}
				rec.Record(d)
				if time.Until(next) < -2*interval {
					// Saturated: shed the backlog instead of bursting a
					// deep catch-up train (which would inflate tails far
					// beyond what an open-loop generator produces).
					next = time.Now()
				}
			}
		}(int64(c) + 101)
	}
	wg.Wait()
	return rec.Summarize(duration)
}
