package bench

import (
	"sync/atomic"
	"time"

	"memorydb/internal/obs"
)

// Recorder accumulates latency samples from many client goroutines into a
// lock-free log-linear histogram (internal/obs). Unlike the old
// sort-all-samples design, memory stays constant regardless of run length
// and Record never takes a lock, so the recorder itself cannot become the
// bottleneck in saturation benchmarks.
type Recorder struct {
	hist obs.Histogram
	errs atomic.Int64
}

// Record adds one sample.
func (r *Recorder) Record(d time.Duration) {
	r.hist.Observe(d)
}

// RecordErr counts a failed operation.
func (r *Recorder) RecordErr() {
	r.errs.Add(1)
}

// Histogram exposes the underlying distribution, e.g. for merging into a
// shared metrics registry or dumping bucket-level JSON.
func (r *Recorder) Histogram() *obs.Histogram { return &r.hist }

// Summary holds the percentile digest of a run. Percentiles come from the
// log-linear histogram (≤6.25% bucket error, never under-reported); P100
// is the exact maximum.
type Summary struct {
	Count      int
	Errors     int
	Throughput float64 // ops/sec over the measured window
	Avg        time.Duration
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	P999       time.Duration
	P100       time.Duration
}

// Summarize computes the digest over a window of elapsed wall time.
func (r *Recorder) Summarize(elapsed time.Duration) Summary {
	n := int(r.hist.Count())
	s := Summary{Count: n, Errors: int(r.errs.Load())}
	if elapsed > 0 {
		s.Throughput = float64(n) / elapsed.Seconds()
	}
	if n == 0 {
		return s
	}
	q := r.hist.Quantiles()
	s.Avg = r.hist.Mean()
	s.P50 = q.P50
	s.P95 = q.P95
	s.P99 = q.P99
	s.P999 = q.P999
	s.P100 = q.Max
	return s
}
