package bench

import (
	"sort"
	"sync"
	"time"
)

// Recorder accumulates latency samples from many client goroutines.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
	errs    int
}

// Record adds one sample.
func (r *Recorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// RecordErr counts a failed operation.
func (r *Recorder) RecordErr() {
	r.mu.Lock()
	r.errs++
	r.mu.Unlock()
}

// Summary holds the percentile digest of a run.
type Summary struct {
	Count      int
	Errors     int
	Throughput float64 // ops/sec over the measured window
	Avg        time.Duration
	P50        time.Duration
	P99        time.Duration
	P100       time.Duration
}

// Summarize computes the digest over a window of elapsed wall time.
func (r *Recorder) Summarize(elapsed time.Duration) Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{Count: len(r.samples), Errors: r.errs}
	if elapsed > 0 {
		s.Throughput = float64(len(r.samples)) / elapsed.Seconds()
	}
	if len(r.samples) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	s.Avg = total / time.Duration(len(sorted))
	s.P50 = sorted[len(sorted)/2]
	s.P99 = sorted[min(len(sorted)-1, len(sorted)*99/100)]
	s.P100 = sorted[len(sorted)-1]
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
