package bench

import (
	"context"
	"testing"
	"time"
)

func TestCapacityShape(t *testing.T) {
	// The model must encode the paper's orderings at every size.
	for _, it := range R7gSweep {
		rRead := Capacity(SystemRedis, OpRead, it)
		mRead := Capacity(SystemMemoryDB, OpRead, it)
		rWrite := Capacity(SystemRedis, OpWrite, it)
		mWrite := Capacity(SystemMemoryDB, OpWrite, it)
		if mRead < rRead {
			t.Errorf("%s: MemoryDB read capacity below Redis", it.Name)
		}
		if rWrite < mWrite {
			t.Errorf("%s: Redis write capacity below MemoryDB", it.Name)
		}
	}
	// Plateaus: 16xlarge ratios follow §6.1.2 (500/330 and 300/185).
	big := R7g16xlarge
	readRatio := Capacity(SystemMemoryDB, OpRead, big) / Capacity(SystemRedis, OpRead, big)
	if readRatio < 1.3 || readRatio > 1.7 {
		t.Errorf("read plateau ratio = %.2f, want ~1.5", readRatio)
	}
	writeRatio := Capacity(SystemRedis, OpWrite, big) / Capacity(SystemMemoryDB, OpWrite, big)
	if writeRatio < 1.4 || writeRatio > 1.8 {
		t.Errorf("write plateau ratio = %.2f, want ~1.6", writeRatio)
	}
	// Small instances are core-bound and comparable.
	small := R7gSweep[0]
	if r, m := Capacity(SystemRedis, OpRead, small), Capacity(SystemMemoryDB, OpRead, small); m/r > 1.25 {
		t.Errorf("r7g.large read capacities should be comparable: %f vs %f", r, m)
	}
}

func TestPacerEnforcesCapacity(t *testing.T) {
	var p Pacer
	cost := CostFor(100000) // 10µs per op
	now := time.Now()
	var lastWait time.Duration
	for i := 0; i < 1000; i++ {
		lastWait = p.Reserve(now, cost) // same instant: queue builds
	}
	// 1000 ops × 10µs = 10ms of service; the last waits ~10ms.
	if lastWait < 9*time.Millisecond || lastWait > 11*time.Millisecond {
		t.Fatalf("wait after 1000 instant arrivals = %v, want ~10ms", lastWait)
	}
}

func TestPacerIdleResets(t *testing.T) {
	var p Pacer
	cost := CostFor(1000)
	p.Reserve(time.Now(), cost)
	// After a long idle gap the queue is empty again.
	w := p.Reserve(time.Now().Add(time.Hour), cost)
	if w > 2*cost {
		t.Fatalf("idle pacer still queued: %v", w)
	}
}

func TestRecorderPercentiles(t *testing.T) {
	r := &Recorder{}
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	r.RecordErr()
	s := r.Summarize(time.Second)
	if s.Count != 100 || s.Errors != 1 {
		t.Fatalf("count/errors = %d/%d", s.Count, s.Errors)
	}
	if s.Throughput != 100 {
		t.Fatalf("throughput = %v", s.Throughput)
	}
	// Percentiles now come from the log-linear histogram: never below the
	// exact value, at most one bucket width (6.25%) above it.
	if s.P50 < 50*time.Millisecond || s.P50 > 54*time.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P99 < 99*time.Millisecond || s.P99 > 107*time.Millisecond {
		t.Fatalf("p99 = %v", s.P99)
	}
	if s.P95 < 95*time.Millisecond || s.P95 > 102*time.Millisecond {
		t.Fatalf("p95 = %v", s.P95)
	}
	if s.P999 < s.P99 || s.P999 > s.P100 {
		t.Fatalf("p999 = %v outside [p99=%v, p100=%v]", s.P999, s.P99, s.P100)
	}
	if s.P100 != 100*time.Millisecond {
		t.Fatalf("p100 = %v", s.P100)
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := &Recorder{}
	s := r.Summarize(time.Second)
	if s.Count != 0 || s.P50 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestTargetEndToEnd(t *testing.T) {
	// One tiny closed-loop run per system: write durability must hold on
	// the MemoryDB target (commit latency visible in write latency).
	ctx := context.Background()
	for _, sys := range []System{SystemRedis, SystemMemoryDB} {
		tg, err := NewTarget(sys, R7gSweep[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := tg.Prefill(ctx, 100, 100); err != nil {
			t.Fatal(err)
		}
		sum := RunClosedLoop(ctx, tg, WorkloadMixed8020, 8, 50*time.Millisecond)
		tg.Close()
		if sum.Count == 0 || sum.Errors > 0 {
			t.Fatalf("%v: %+v", sys, sum)
		}
	}
}

func TestMemoryDBWriteLatencyReflectsCommit(t *testing.T) {
	ctx := context.Background()
	tg, err := NewTarget(SystemMemoryDB, R7g16xlarge)
	if err != nil {
		t.Fatal(err)
	}
	defer tg.Close()
	if err := tg.Prefill(ctx, 10, 100); err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 20
	for i := 0; i < n; i++ {
		d, err := tg.Op(ctx, OpWrite, i, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	if avg := total / n; avg < 2*time.Millisecond {
		t.Fatalf("avg write latency %v — multi-AZ commit not applied", avg)
	}
}

func TestFigure6InvariantsViaBench(t *testing.T) {
	samples := Figure6(nil)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	// Figure 7 flat; Figure 6 collapses — the core contrast of §6.2.
	offbox := Figure7(nil)
	minOff, minBG := offbox[0].ThroughputOps, samples[0].ThroughputOps
	for _, s := range offbox {
		if s.ThroughputOps < minOff {
			minOff = s.ThroughputOps
		}
	}
	for _, s := range samples {
		if s.ThroughputOps < minBG {
			minBG = s.ThroughputOps
		}
	}
	if minOff < offbox[0].ThroughputOps {
		t.Fatal("off-box throughput dipped")
	}
	if minBG > samples[0].ThroughputOps*0.1 {
		t.Fatal("BGSave run never collapsed")
	}
}

func TestFigureForklessFlatWhereForkCollapses(t *testing.T) {
	rows := FigureForkless(nil)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	collapsed := 0
	for _, r := range rows {
		v := r.Values
		// The forkless arm must stay flat at every size: bounded tail
		// latency, throughput within a few percent of steady state, and a
		// resident footprint that never doubles the dataset.
		if v["forkless_peak_p100_ms"] > 50 {
			t.Fatalf("%s: forkless p100 %.0fms not flat", r.Label, v["forkless_peak_p100_ms"])
		}
		if v["forkless_min_ops"] < 0.9*v["fork_min_ops"] && v["fork_peak_swap_pct"] == 0 {
			t.Fatalf("%s: forkless throughput below healthy fork arm", r.Label)
		}
		if v["forkless_peak_mem_gb"] > 1.5*v["dataset_gb"] {
			t.Fatalf("%s: forkless RSS %.1fGB ballooned past dataset %.0fGB",
				r.Label, v["forkless_peak_mem_gb"], v["dataset_gb"])
		}
		// Fork collapse marker: swap engaged and tail latency in seconds.
		if v["fork_peak_swap_pct"] > 0 && v["fork_peak_p100_ms"] > 1000 {
			collapsed++
			if v["forkless_peak_p100_ms"] > v["fork_peak_p100_ms"]/10 {
				t.Fatalf("%s: forkless tail not clearly flat vs collapsed fork arm", r.Label)
			}
		}
	}
	if collapsed == 0 {
		t.Fatal("no dataset size collapsed the fork arm — sweep too small to show the contrast")
	}
}
