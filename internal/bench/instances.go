// Package bench reproduces the paper's evaluation (§6): workload
// generators, closed- and paced-loop clients, latency percentile
// recording, and an instance-type capacity model. Every table and figure
// in §6 has a Run function here; cmd/memorydb-bench and the root
// bench_test.go print the same rows/series the paper reports.
//
// The capacity model stands in for EC2 hardware: each Graviton3 instance
// type contributes a per-op engine cost and an IO path cost, and the
// single-threaded engine is modeled as a deterministic-service queue (the
// Pacer). Everything else — the tracker, the transaction log commit, the
// replication stream — is the real implementation.
package bench

import "fmt"

// InstanceType models one EC2 shape from the paper's §6.1.1 sweep
// (r7g.large … r7g.16xlarge).
type InstanceType struct {
	Name  string
	VCPUs int
}

// R7gSweep is the instance list of Figure 4.
var R7gSweep = []InstanceType{
	{"r7g.large", 2},
	{"r7g.xlarge", 4},
	{"r7g.2xlarge", 8},
	{"r7g.4xlarge", 16},
	{"r7g.8xlarge", 32},
	{"r7g.12xlarge", 48},
	{"r7g.16xlarge", 64},
}

// R7g16xlarge is the Figure 5 host.
var R7g16xlarge = InstanceType{"r7g.16xlarge", 64}

// System selects which side of the comparison is being modeled.
type System int

// Systems under test.
const (
	SystemRedis System = iota
	SystemMemoryDB
)

// String names the system.
func (s System) String() string {
	if s == SystemMemoryDB {
		return "MemoryDB"
	}
	return "Redis"
}

// OpKind is the workload operation class.
type OpKind int

// Operation classes.
const (
	OpRead OpKind = iota
	OpWrite
)

// CapacityScale scales every modeled capacity. The paper's absolute
// plateaus (500K/330K read op/s) exceed what a single Go workloop
// sustains on a laptop, so the model is scaled to half: the binding
// resource stays the instance model rather than the Go runtime, and
// every ratio the figures care about — between systems and across
// instance types — is preserved. Set to 1.0 on a machine that can
// sustain >600K op/s through one node.
var CapacityScale = 0.5

// Capacity returns the engine throughput ceiling (ops/sec) for the given
// system, op kind and instance type, scaled by CapacityScale.
//
// The shape follows §6.1.2: small instances are vCPU-bound and the two
// systems are comparable; large instances hit the single-threaded
// engine's ceiling — ~330K op/s for Redis reads with threaded IO vs
// ~500K for MemoryDB with Enhanced IO Multiplexing (client connections
// aggregated into one engine connection); ~300K for Redis writes vs
// ~185K for MemoryDB writes, whose engine path additionally chunks and
// ships every mutation to the transaction log.
func Capacity(sys System, kind OpKind, it InstanceType) float64 {
	var plateau, perCore float64
	switch {
	case sys == SystemRedis && kind == OpRead:
		plateau, perCore = 330_000, 55_000
	case sys == SystemMemoryDB && kind == OpRead:
		plateau, perCore = 500_000, 62_000
	case sys == SystemRedis && kind == OpWrite:
		plateau, perCore = 300_000, 50_000
	case sys == SystemMemoryDB && kind == OpWrite:
		plateau, perCore = 185_000, 40_000
	}
	cap := float64(it.VCPUs) * perCore
	if cap > plateau {
		cap = plateau
	}
	return cap * CapacityScale
}

// Row is one formatted output line of a regenerated table/figure.
type Row struct {
	Label  string
	Values map[string]float64
	Order  []string
}

// Format renders the row as "label  k=v  k=v ...".
func (r Row) Format() string {
	s := fmt.Sprintf("%-14s", r.Label)
	for _, k := range r.Order {
		v := r.Values[k]
		switch {
		case v >= 1000:
			s += fmt.Sprintf("  %s=%.0f", k, v)
		default:
			s += fmt.Sprintf("  %s=%.3f", k, v)
		}
	}
	return s
}
