package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memorydb/internal/memsim"
)

// ShardedArmShards is the execution-shard count of the benchmarks'
// sharded MemoryDB arm: GOMAXPROCS, floored at 8 so the ablation stays
// meaningful on small CI runners (where GOMAXPROCS would collapse the
// sharded arm back to the single-workloop configuration), capped at the
// keyspace's 64 parts.
func ShardedArmShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 64 {
		n = 64
	}
	return n
}

// Options scale the experiments so they fit the machine at hand. The
// paper uses 10 load generators × 100 connections and 1M pre-filled
// keys; the defaults here are scaled down but preserve saturation (the
// client count comfortably exceeds capacity × latency).
type Options struct {
	Clients  int
	Duration time.Duration
	Prefill  int
}

// DefaultOptions suit a laptop run of a few seconds per figure. 512
// clients keep even the highest-latency configuration (MemoryDB writes
// at ~3 ms commit) saturated well past the largest modeled capacity.
func DefaultOptions() Options {
	return Options{Clients: 512, Duration: 400 * time.Millisecond, Prefill: 5000}
}

// Figure4 regenerates Figure 4: maximum throughput per instance type for
// read-only (a) and write-only (b) workloads — Redis, single-workloop
// MemoryDB, and keyspace-sharded MemoryDB (Shards=ShardedArmShards).
func Figure4(ctx context.Context, w Workload, opts Options, out io.Writer) ([]Row, error) {
	var rows []Row
	arms := []struct {
		key    string
		sys    System
		shards int
	}{
		{"redis_ops", SystemRedis, 1},
		{"memorydb_ops", SystemMemoryDB, 1},
		{"memorydb_sharded_ops", SystemMemoryDB, ShardedArmShards()},
	}
	for _, it := range R7gSweep {
		row := Row{Label: it.Name, Values: map[string]float64{},
			Order: []string{"redis_ops", "memorydb_ops", "memorydb_sharded_ops"}}
		for _, arm := range arms {
			t, err := NewTargetShards(arm.sys, it, 0, arm.shards)
			if err != nil {
				return nil, err
			}
			if err := t.Prefill(ctx, opts.Prefill, w.ValueBytes); err != nil {
				t.Close()
				return nil, err
			}
			sum := RunClosedLoop(ctx, t, w, opts.Clients, opts.Duration)
			t.Close()
			row.Values[arm.key] = sum.Throughput
		}
		rows = append(rows, row)
		if out != nil {
			fmt.Fprintln(out, row.Format())
		}
	}
	return rows, nil
}

// Figure5 regenerates Figure 5: latency vs offered throughput on
// r7g.16xlarge for the given workload, for both systems. Offered rates
// sweep 10%..95% of the slower system's capacity so both sides see the
// same absolute load points, like the paper's shared x-axis.
func Figure5(ctx context.Context, w Workload, opts Options, out io.Writer) ([]Row, error) {
	it := R7g16xlarge
	kind := OpWrite
	if w.ReadRatio == 1.0 {
		kind = OpRead
	}
	lo := Capacity(SystemMemoryDB, kind, it)
	if c := Capacity(SystemRedis, kind, it); c < lo {
		lo = c
	}
	fractions := []float64{0.1, 0.3, 0.5, 0.7, 0.85, 0.9}
	var rows []Row
	for _, sys := range []System{SystemRedis, SystemMemoryDB} {
		t, err := NewTarget(sys, it)
		if err != nil {
			return nil, err
		}
		if err := t.Prefill(ctx, opts.Prefill, w.ValueBytes); err != nil {
			t.Close()
			return nil, err
		}
		for _, f := range fractions {
			offered := lo * f
			sum := RunOffered(ctx, t, w, offered, opts.Clients, opts.Duration)
			row := Row{
				Label: fmt.Sprintf("%s@%.0fK", sys, offered/1000),
				Values: map[string]float64{
					"offered_ops": offered,
					"p50_ms":      float64(sum.P50) / 1e6,
					"p95_ms":      float64(sum.P95) / 1e6,
					"p99_ms":      float64(sum.P99) / 1e6,
					"p999_ms":     float64(sum.P999) / 1e6,
				},
				Order: []string{"offered_ops", "p50_ms", "p95_ms", "p99_ms", "p999_ms"},
			}
			rows = append(rows, row)
			if out != nil {
				fmt.Fprintln(out, row.Format())
			}
		}
		t.Close()
	}
	return rows, nil
}

// Figure6 regenerates Figure 6: client-perceived latency and throughput
// while Redis BGSave runs in a memory-constrained setup (2 vCPU, 16 GB
// RAM, 12 GB maxmemory, 20M × 500 B keys, 100 GET + 20 SET clients).
func Figure6(out io.Writer) []memsim.Sample {
	cfg := memsim.DefaultRedisBGSave()
	samples := memsim.SimulateBGSave(cfg, 10, 160)
	if out != nil {
		fmt.Fprintln(out, "t_sec  phase    ops/s    avg_ms  p100_ms  mem_gb  swap_pct")
		for _, s := range samples {
			fmt.Fprintf(out, "%5.0f  %-7s %8.0f  %6.2f  %7.1f  %6.2f  %7.2f\n",
				s.TimeSec, s.Phase, s.ThroughputOps, s.AvgLatencyMs, s.P100LatencyMs, s.MemUsedGB, s.SwapPct)
		}
	}
	return samples
}

// Figure7 regenerates Figure 7: the same client workload against
// MemoryDB while an off-box cluster snapshots in parallel — flat
// throughput and latency throughout.
func Figure7(out io.Writer) []memsim.Sample {
	cfg := memsim.DefaultRedisBGSave()
	samples := memsim.SimulateOffbox(cfg, 30, 60, 120)
	if out != nil {
		fmt.Fprintln(out, "t_sec  phase             ops/s    avg_ms  p100_ms")
		for _, s := range samples {
			fmt.Fprintf(out, "%5.0f  %-16s %8.0f  %6.2f  %7.1f\n",
				s.TimeSec, s.Phase, s.ThroughputOps, s.AvgLatencyMs, s.P100LatencyMs)
		}
	}
	return samples
}

// FigureForkless contrasts the two checkpointers across memory pressure:
// for each dataset size on the paper's 16 GB host, the fork/COW BGSave
// arm (Figure 6 dynamics) against the forkless log-tailing builder. The
// fork arm's tail latency and RSS blow up once COW duplication spills
// into swap; the forkless arm's write p100 and resident footprint stay
// flat at every size because the engine never forks — snapshots are
// built from the log, off the critical path.
func FigureForkless(out io.Writer) []Row {
	var rows []Row
	if out != nil {
		fmt.Fprintln(out, "dataset_gb   fork: p100_ms / min_ops / peak_mem_gb / swap_pct   forkless: p100_ms / min_ops / peak_mem_gb")
	}
	for _, gb := range []float64{6, 8, 10, 12, 14} {
		cfg := memsim.DefaultRedisBGSave()
		cfg.DatasetGB = gb
		fork := memsim.SimulateBGSave(cfg, 10, 160)
		forkless := memsim.SimulateForkless(cfg, 10, 60, 160)
		row := Row{
			Label: fmt.Sprintf("%gGB", gb),
			Values: map[string]float64{
				"dataset_gb":           gb,
				"fork_peak_p100_ms":    memsim.MaxP100(fork),
				"fork_min_ops":         memsim.MinThroughput(fork),
				"fork_peak_mem_gb":     memsim.MaxMemUsedGB(fork),
				"fork_peak_swap_pct":   memsim.PeakSwapPct(fork),
				"forkless_peak_p100_ms": memsim.MaxP100(forkless),
				"forkless_min_ops":      memsim.MinThroughput(forkless),
				"forkless_peak_mem_gb":  memsim.MaxMemUsedGB(forkless),
			},
			Order: []string{"dataset_gb", "fork_peak_p100_ms", "fork_min_ops", "fork_peak_mem_gb",
				"fork_peak_swap_pct", "forkless_peak_p100_ms", "forkless_min_ops", "forkless_peak_mem_gb"},
		}
		rows = append(rows, row)
		if out != nil {
			fmt.Fprintln(out, row.Format())
		}
	}
	return rows
}

// FigureGroupCommit compares write-only throughput with group commit
// enabled against per-mutation appends (MaxBatchRecords=1), reporting the
// records-per-entry amortization the transaction log observed. This is the
// ablation for the batched append path: with hundreds of closed-loop
// writers, throughput is bounded by quorum round-trips, so coalescing K
// records per entry recovers most of the K× gap to engine capacity.
func FigureGroupCommit(ctx context.Context, opts Options, out io.Writer) ([]Row, error) {
	var rows []Row
	for _, mode := range []struct {
		label  string
		batch  int
		shards int
	}{
		{"batch=1", 1, 1},
		{"batch=default", 0, 1},
		{fmt.Sprintf("batch=default,shards=%d", ShardedArmShards()), 0, ShardedArmShards()},
	} {
		t, err := NewTargetShards(SystemMemoryDB, R7g16xlarge, mode.batch, mode.shards)
		if err != nil {
			return nil, err
		}
		if err := t.Prefill(ctx, opts.Prefill, WorkloadWriteOnly.ValueBytes); err != nil {
			t.Close()
			return nil, err
		}
		ps := RunPipelined(ctx, t, WorkloadWriteOnly, opts.Clients, opts.Duration)
		t.Close()
		row := Row{
			Label: mode.label,
			Values: map[string]float64{
				"ops":               ps.Throughput,
				"p50_ms":            float64(ps.P50) / 1e6,
				"p95_ms":            float64(ps.P95) / 1e6,
				"p99_ms":            float64(ps.P99) / 1e6,
				"p999_ms":           float64(ps.P999) / 1e6,
				"records_per_entry": ps.RecordsPerEntry,
			},
			Order: []string{"ops", "p50_ms", "p95_ms", "p99_ms", "p999_ms", "records_per_entry"},
		}
		rows = append(rows, row)
		if out != nil {
			fmt.Fprintln(out, row.Format())
		}
	}
	return rows, nil
}

// WriteBandwidth measures the §6.1.2.1 claim that a single shard reaches
// ~100 MB/s of write bandwidth with pipelining and large values: batched
// (pipelined) SETs of valueBytes each are driven through the shard and
// the achieved payload bandwidth is returned in MB/s.
func WriteBandwidth(ctx context.Context, valueBytes, pipeline int, duration time.Duration) (float64, error) {
	t, err := NewTarget(SystemMemoryDB, R7g16xlarge)
	if err != nil {
		return 0, err
	}
	defer t.Close()
	val := make([]byte, valueBytes)
	stop := time.Now().Add(duration)
	var bytesWritten atomic.Int64
	// Several pipelining connections, as the paper's throughput-oriented
	// configuration implies: appends from concurrent batches pipeline in
	// the log, so commit latency stops bounding bandwidth.
	const conns = 8
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for cnum := 0; cnum < conns; cnum++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			i := base * 1_000_000
			for time.Now().Before(stop) {
				var cmds [][][]byte
				for j := 0; j < pipeline; j++ {
					cmds = append(cmds, [][]byte{[]byte("SET"), benchKey(i), val})
					i++
				}
				if _, err := t.node.DoBatch(ctx, cmds); err != nil {
					errs <- err
					return
				}
				bytesWritten.Add(int64(pipeline * valueBytes))
			}
		}(cnum)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(bytesWritten.Load()) / duration.Seconds() / (1 << 20), nil
}
