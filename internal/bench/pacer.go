package bench

import (
	"sync"
	"time"
)

// Pacer models the single-threaded engine as a deterministic-service
// queue: each operation reserves a service slot of its cost, and the
// caller sleeps until its slot starts. Queueing delay therefore emerges
// naturally as offered load approaches capacity — which is exactly the
// latency-vs-throughput behaviour Figure 5 sweeps.
type Pacer struct {
	mu   sync.Mutex
	next time.Time
}

// Reserve books cost of engine time and returns how long the caller must
// wait before its operation is considered serviced.
func (p *Pacer) Reserve(now time.Time, cost time.Duration) time.Duration {
	p.mu.Lock()
	start := p.next
	if start.Before(now) {
		start = now
	}
	p.next = start.Add(cost)
	p.mu.Unlock()
	return start.Add(cost).Sub(now)
}

// Wait reserves and sleeps.
func (p *Pacer) Wait(cost time.Duration) {
	d := p.Reserve(time.Now(), cost)
	if d > 0 {
		time.Sleep(d)
	}
}

// CostFor converts a capacity in ops/sec into a per-op cost.
func CostFor(capacity float64) time.Duration {
	if capacity <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / capacity)
}
