package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/core"
	"memorydb/internal/election"
	"memorydb/internal/txlog"
)

// ReplicaReadSweep is the replica counts of the replica-read throughput
// figure: -1 is the write-only baseline (no read load at all, pinning
// the primary's undisturbed write throughput), 0 puts every read on the
// primary, and 1..4 spread reads across verified replicas.
var ReplicaReadSweep = []int{-1, 0, 1, 2, 4}

// replicaReadIT is the modeled host of the replica-read figure.
var replicaReadIT = InstanceType{"r7g.large", 2}

// replicaReadNodeCapacity pins each node's read lane (ops/sec) for this
// figure. It is deliberately far below what one Go node actually
// sustains through the verified read path (~45K op/s even on one vCPU),
// so the per-node capacity model — not the Go scheduler — is the
// binding resource: the whole R=4 fleet's modeled load fits inside a
// single core's real throughput, and the figure measures *scaling* with
// the replica count on any runner, not the runner's parallelism.
// Absolute numbers are modeled (like CapacityScale); the ratios are
// what the figure reports.
var replicaReadNodeCapacity = 5_000.0

// readFleet is one primary plus R verified-read replicas on a shared
// multi-AZ transaction log, each node fronted by its own engine-capacity
// lane.
type readFleet struct {
	primary     *core.Node
	primaryLane *Pacer
	replicas    []*core.Node
	lanes       []*Pacer
	readCost    time.Duration
	writeCost   time.Duration
	closers     []func()
}

func (f *readFleet) Close() {
	for _, c := range f.closers {
		c()
	}
}

func newReadFleet(replicas int) (*readFleet, error) {
	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: DefaultCommitLatency(),
	})
	log, err := svc.CreateLog("bench-reads")
	if err != nil {
		return nil, err
	}
	f := &readFleet{
		primaryLane: &Pacer{},
		readCost:    CostFor(replicaReadNodeCapacity),
		writeCost:   CostFor(Capacity(SystemMemoryDB, OpWrite, replicaReadIT)),
	}
	mk := func(id string) (*core.Node, error) {
		n, err := core.NewNode(core.Config{
			NodeID: id, ShardID: "bench-reads", Log: log,
			Lease: 500 * time.Millisecond, Backoff: 650 * time.Millisecond,
			RenewEvery: 100 * time.Millisecond, ReplicaPoll: time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		n.Start()
		f.closers = append(f.closers, n.Stop)
		return n, nil
	}
	if f.primary, err = mk("bench-primary"); err != nil {
		f.Close()
		return nil, err
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.primary.Role() != election.RolePrimary {
		if time.Now().After(deadline) {
			f.Close()
			return nil, fmt.Errorf("bench: node never became primary")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < replicas; i++ {
		n, err := mk(fmt.Sprintf("bench-replica-%d", i))
		if err != nil {
			f.Close()
			return nil, err
		}
		f.replicas = append(f.replicas, n)
		f.lanes = append(f.lanes, &Pacer{})
	}
	return f, nil
}

// prefill seeds n keys and, when replicas exist, waits until every one
// of them has proved freshness once, so the measurement window starts
// past the initial catch-up transient.
func (f *readFleet) prefill(ctx context.Context, n int) error {
	val := make([]byte, 100)
	for i := range val {
		val[i] = 'x'
	}
	const batch = 500
	for base := 0; base < n; base += batch {
		var cmds [][][]byte
		for i := base; i < base+batch && i < n; i++ {
			cmds = append(cmds, [][]byte{[]byte("SET"), benchKey(i), val})
		}
		if _, err := f.primary.DoBatch(ctx, cmds); err != nil {
			return err
		}
	}
	probe := [][]byte{[]byte("GET"), benchKey(0)}
	for _, r := range f.replicas {
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, outcome, err := r.DoRead(ctx, probe, core.ReadOpts{})
			if err != nil {
				return err
			}
			if outcome == core.ReadOutcomeLinearizable {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: replica %s never proved freshness", r.ID())
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// reserve charges the lane and sleeps when the wait is worth a real
// sleep (see Target.Op for why sub-200µs waits are absorbed).
func reserve(lane *Pacer, cost time.Duration) {
	if wait := lane.Reserve(time.Now(), cost); wait > 200*time.Microsecond {
		time.Sleep(wait)
	}
}

// FigureReplicaReads measures the consistent replica read path: total
// linearizable read throughput and primary write throughput as the
// replica count grows. With zero replicas every read is served by the
// primary; with R replicas, readers spread across them and each read
// carries the freshness proof (capture, park, execute) — a read that
// cannot prove freshness REDIRECTs and is retried on the primary, so
// the reported read throughput never counts a stale serve. The paper's
// claim (§5, §6): replicas add read capacity in near-linear steps while
// the primary's write path is left alone. The write-only arm pins the
// undisturbed write baseline; replicas=0 shows what co-locating the
// read load on the primary costs it.
func FigureReplicaReads(ctx context.Context, opts Options, out io.Writer) ([]Row, error) {
	readers := opts.Clients
	if readers < 8 {
		readers = 8
	}
	writers := opts.Clients / 8
	if writers < 4 {
		writers = 4
	}
	keys := opts.Prefill
	if keys < 1 {
		keys = 1
	}
	var rows []Row
	for _, nreplicas := range ReplicaReadSweep {
		writeOnly := nreplicas < 0
		f, err := newReadFleet(max(nreplicas, 0))
		if err != nil {
			return nil, err
		}
		if err := f.prefill(ctx, keys); err != nil {
			f.Close()
			return nil, err
		}

		var readOps, writeOps, redirects atomic.Int64
		val := make([]byte, 100)
		stop := time.Now().Add(opts.Duration)
		var wg sync.WaitGroup
		for c := 0; c < writers; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for time.Now().Before(stop) {
					reserve(f.primaryLane, f.writeCost)
					argv := [][]byte{[]byte("SET"), benchKey(rng.Intn(keys)), val}
					if v, err := f.primary.Do(ctx, argv); err == nil && !v.IsError() {
						writeOps.Add(1)
					}
				}
			}(int64(c) + 1)
		}
		nreaders := readers
		if writeOnly {
			nreaders = 0
		}
		for c := 0; c < nreaders; c++ {
			wg.Add(1)
			go func(id int, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for time.Now().Before(stop) {
					argv := [][]byte{[]byte("GET"), benchKey(rng.Intn(keys))}
					if len(f.replicas) == 0 {
						reserve(f.primaryLane, f.readCost)
						if _, err := f.primary.Do(ctx, argv); err == nil {
							readOps.Add(1)
						}
						continue
					}
					i := id % len(f.replicas)
					reserve(f.lanes[i], f.readCost)
					_, outcome, err := f.replicas[i].DoRead(ctx, argv, core.ReadOpts{})
					if err != nil {
						continue
					}
					switch outcome {
					case core.ReadOutcomeLinearizable:
						readOps.Add(1)
					case core.ReadOutcomeRedirected:
						// Explicit degradation: the read is retried on
						// the primary, paying the primary's lane —
						// exactly what a cluster client does on
						// REDIRECT.
						redirects.Add(1)
						reserve(f.primaryLane, f.readCost)
						if _, err := f.primary.Do(ctx, argv); err == nil {
							readOps.Add(1)
						}
					}
				}
			}(c, int64(readers+c)+1)
		}
		wg.Wait()
		f.Close()

		secs := opts.Duration.Seconds()
		label := fmt.Sprintf("replicas=%d", nreplicas)
		if writeOnly {
			label = "write-only"
		}
		row := Row{
			Label: label,
			Values: map[string]float64{
				"read_ops":  float64(readOps.Load()) / secs,
				"write_ops": float64(writeOps.Load()) / secs,
				"redirects": float64(redirects.Load()),
			},
			Order: []string{"read_ops", "write_ops", "redirects"},
		}
		rows = append(rows, row)
		if out != nil {
			fmt.Fprintln(out, row.Format())
		}
	}
	return rows, nil
}
