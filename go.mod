module memorydb

go 1.22
