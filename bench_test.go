// Package memorydb_bench holds the top-level benchmark harness: one
// testing.B benchmark per table/figure of the paper's evaluation (§6),
// plus ablation benches for the design choices DESIGN.md calls out.
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure benches report throughput/latency via b.ReportMetric; absolute
// numbers are machine- and scale-dependent (see bench.CapacityScale), but
// the orderings and ratios match §6.
package memorydb_bench

import (
	"context"
	"fmt"
	"testing"
	"time"

	"memorydb/internal/bench"
	"memorydb/internal/clock"
	"memorydb/internal/core"
	"memorydb/internal/election"
	"memorydb/internal/engine"
	"memorydb/internal/memsim"
	"memorydb/internal/netsim"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

// figureOpts keeps each benchmark iteration short; `go test -bench` runs
// the body repeatedly and averages.
var figureOpts = bench.Options{Clients: 256, Duration: 150 * time.Millisecond, Prefill: 2000}

func runFigure4Point(b *testing.B, sys bench.System, it bench.InstanceType, w bench.Workload) {
	runFigure4PointShards(b, sys, it, w, 1)
}

func runFigure4PointShards(b *testing.B, sys bench.System, it bench.InstanceType, w bench.Workload, shards int) {
	ctx := context.Background()
	t, err := bench.NewTargetShards(sys, it, 0, shards)
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	if err := t.Prefill(ctx, figureOpts.Prefill, w.ValueBytes); err != nil {
		b.Fatal(err)
	}
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := bench.RunClosedLoop(ctx, t, w, figureOpts.Clients, figureOpts.Duration)
		total += sum.Throughput
	}
	b.ReportMetric(total/float64(b.N), "ops/s")
}

// BenchmarkFigure4a reproduces Figure 4a: read-only maximum throughput
// per instance type — Redis, single-workloop MemoryDB, and the
// keyspace-sharded configuration (Shards=bench.ShardedArmShards).
func BenchmarkFigure4a(b *testing.B) {
	for _, it := range bench.R7gSweep {
		for _, sys := range []bench.System{bench.SystemRedis, bench.SystemMemoryDB} {
			b.Run(fmt.Sprintf("%s/%s", it.Name, sys), func(b *testing.B) {
				runFigure4Point(b, sys, it, bench.WorkloadReadOnly)
			})
		}
		b.Run(fmt.Sprintf("%s/MemoryDB-sharded", it.Name), func(b *testing.B) {
			runFigure4PointShards(b, bench.SystemMemoryDB, it, bench.WorkloadReadOnly, bench.ShardedArmShards())
		})
	}
}

// BenchmarkFigure4b reproduces Figure 4b: write-only maximum throughput
// per instance type. MemoryDB commits every write to the multi-AZ log;
// the sharded arm flushes one group-commit buffer per execution shard,
// so append pipelining widens with the shard count.
func BenchmarkFigure4b(b *testing.B) {
	for _, it := range bench.R7gSweep {
		for _, sys := range []bench.System{bench.SystemRedis, bench.SystemMemoryDB} {
			b.Run(fmt.Sprintf("%s/%s", it.Name, sys), func(b *testing.B) {
				runFigure4Point(b, sys, it, bench.WorkloadWriteOnly)
			})
		}
		b.Run(fmt.Sprintf("%s/MemoryDB-sharded", it.Name), func(b *testing.B) {
			runFigure4PointShards(b, bench.SystemMemoryDB, it, bench.WorkloadWriteOnly, bench.ShardedArmShards())
		})
	}
}

func runFigure5Point(b *testing.B, sys bench.System, w bench.Workload, frac float64) {
	ctx := context.Background()
	it := bench.R7g16xlarge
	kind := bench.OpWrite
	if w.ReadRatio == 1.0 {
		kind = bench.OpRead
	}
	lo := bench.Capacity(bench.SystemMemoryDB, kind, it)
	if c := bench.Capacity(bench.SystemRedis, kind, it); c < lo {
		lo = c
	}
	t, err := bench.NewTarget(sys, it)
	if err != nil {
		b.Fatal(err)
	}
	defer t.Close()
	if err := t.Prefill(ctx, figureOpts.Prefill, w.ValueBytes); err != nil {
		b.Fatal(err)
	}
	var p50, p99 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := bench.RunOffered(ctx, t, w, lo*frac, figureOpts.Clients, figureOpts.Duration)
		p50 += float64(sum.P50) / 1e6
		p99 += float64(sum.P99) / 1e6
	}
	b.ReportMetric(p50/float64(b.N), "p50_ms")
	b.ReportMetric(p99/float64(b.N), "p99_ms")
}

// BenchmarkFigure5a: read-only latency vs offered throughput (16xlarge).
func BenchmarkFigure5a(b *testing.B) {
	for _, sys := range []bench.System{bench.SystemRedis, bench.SystemMemoryDB} {
		for _, frac := range []float64{0.3, 0.7, 0.9} {
			b.Run(fmt.Sprintf("%s/load%.0f%%", sys, frac*100), func(b *testing.B) {
				runFigure5Point(b, sys, bench.WorkloadReadOnly, frac)
			})
		}
	}
}

// BenchmarkFigure5b: write-only latency vs offered throughput. Redis
// stays sub-ms at the median; MemoryDB pays ~3 ms for multi-AZ commits.
func BenchmarkFigure5b(b *testing.B) {
	for _, sys := range []bench.System{bench.SystemRedis, bench.SystemMemoryDB} {
		for _, frac := range []float64{0.3, 0.7, 0.9} {
			b.Run(fmt.Sprintf("%s/load%.0f%%", sys, frac*100), func(b *testing.B) {
				runFigure5Point(b, sys, bench.WorkloadWriteOnly, frac)
			})
		}
	}
}

// BenchmarkFigure5c: 80/20 mixed latency vs offered throughput.
func BenchmarkFigure5c(b *testing.B) {
	for _, sys := range []bench.System{bench.SystemRedis, bench.SystemMemoryDB} {
		for _, frac := range []float64{0.3, 0.7, 0.9} {
			b.Run(fmt.Sprintf("%s/load%.0f%%", sys, frac*100), func(b *testing.B) {
				runFigure5Point(b, sys, bench.WorkloadMixed8020, frac)
			})
		}
	}
}

// BenchmarkFigure6 regenerates the Redis BGSave memory-pressure series
// (the discrete simulation; metrics report the collapse depth and peak
// tail latency).
func BenchmarkFigure6(b *testing.B) {
	var minTput, maxP100 float64
	for i := 0; i < b.N; i++ {
		samples := memsim.SimulateBGSave(memsim.DefaultRedisBGSave(), 10, 160)
		minTput = memsim.MinThroughput(samples)
		maxP100 = memsim.MaxP100(samples)
	}
	b.ReportMetric(minTput, "min_ops/s")
	b.ReportMetric(maxP100, "max_p100_ms")
}

// BenchmarkFigure7 regenerates the off-box snapshotting series (flat).
func BenchmarkFigure7(b *testing.B) {
	var minTput, maxP100 float64
	for i := 0; i < b.N; i++ {
		samples := memsim.SimulateOffbox(memsim.DefaultRedisBGSave(), 30, 60, 120)
		minTput = memsim.MinThroughput(samples)
		maxP100 = memsim.MaxP100(samples)
	}
	b.ReportMetric(minTput, "min_ops/s")
	b.ReportMetric(maxP100, "max_p100_ms")
}

// BenchmarkWriteBandwidth reproduces the §6.1.2.1 claim: a single shard
// sustains on the order of 100 MB/s of pipelined write bandwidth.
func BenchmarkWriteBandwidth(b *testing.B) {
	ctx := context.Background()
	var total float64
	for i := 0; i < b.N; i++ {
		mbps, err := bench.WriteBandwidth(ctx, 4096, 64, 300*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		total += mbps
	}
	b.ReportMetric(total/float64(b.N), "MB/s")
}

// BenchmarkPipelinedWrites measures the group-commit ablation: write-only
// pipelined load against a MemoryDB node with per-mutation appends
// (batch=1, the pre-group-commit behavior) vs batched appends (default).
// records_per_entry is read from the transaction log's own counters —
// with batching enabled it must exceed 1 under this concurrency.
func BenchmarkPipelinedWrites(b *testing.B) {
	it := bench.R7g16xlarge
	for _, mode := range []struct {
		name   string
		batch  int
		shards int
	}{
		{"batch=1", 1, 1},
		{"batch=default", 0, 1},
		{fmt.Sprintf("batch=default,shards=%d", bench.ShardedArmShards()), 0, bench.ShardedArmShards()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ctx := context.Background()
			t, err := bench.NewTargetShards(bench.SystemMemoryDB, it, mode.batch, mode.shards)
			if err != nil {
				b.Fatal(err)
			}
			defer t.Close()
			if err := t.Prefill(ctx, figureOpts.Prefill, bench.WorkloadWriteOnly.ValueBytes); err != nil {
				b.Fatal(err)
			}
			var tput, rpe float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps := bench.RunPipelined(ctx, t, bench.WorkloadWriteOnly, figureOpts.Clients, figureOpts.Duration)
				tput += ps.Throughput
				rpe += ps.RecordsPerEntry
			}
			b.ReportMetric(tput/float64(b.N), "ops/s")
			b.ReportMetric(rpe/float64(b.N), "records_per_entry")
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

func newBenchNode(b *testing.B, commit netsim.LatencyModel, globalGate bool) *core.Node {
	b.Helper()
	svc := txlog.NewService(txlog.Config{Clock: clock.NewReal(), CommitLatency: commit})
	log, err := svc.CreateLog(fmt.Sprintf("ablate-%p", &svc))
	if err != nil {
		b.Fatal(err)
	}
	n, err := core.NewNode(core.Config{
		NodeID: "bench", ShardID: log.ShardID(), Log: log,
		Lease: 500 * time.Millisecond, Backoff: 650 * time.Millisecond,
		RenewEvery: 100 * time.Millisecond, GlobalReadGate: globalGate,
	})
	if err != nil {
		b.Fatal(err)
	}
	n.Start()
	b.Cleanup(n.Stop)
	for n.Role() != election.RolePrimary {
		time.Sleep(time.Millisecond)
	}
	return n
}

// BenchmarkAblationTrackerGranularity compares key-level hazard tracking
// (MemoryDB's design) against a global read barrier: reads of untouched
// keys under a concurrent write stream. Key-level gating keeps them at
// engine latency; a global barrier adds the full commit latency.
func BenchmarkAblationTrackerGranularity(b *testing.B) {
	for _, mode := range []struct {
		name   string
		global bool
	}{{"key-level", false}, {"global", true}} {
		b.Run(mode.name, func(b *testing.B) {
			n := newBenchNode(b, netsim.Fixed(2*time.Millisecond), mode.global)
			ctx := context.Background()
			stop := make(chan struct{})
			// Enough concurrent writers to keep a not-yet-durable write
			// in flight essentially always (one serial writer leaves the
			// pipeline empty between its commit and its next submit).
			for w := 0; w < 8; w++ {
				go func() {
					for {
						select {
						case <-stop:
							return
						default:
							n.Do(ctx, [][]byte{[]byte("SET"), []byte("hot"), []byte("v")})
						}
					}
				}()
			}
			defer close(stop)
			n.Do(ctx, [][]byte{[]byte("SET"), []byte("cold"), []byte("v")})
			time.Sleep(5 * time.Millisecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.Do(ctx, [][]byte{[]byte("GET"), []byte("cold")}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationQuorumLatency sweeps the multi-AZ commit latency and
// reports acknowledged-write latency — the direct cost of durability.
func BenchmarkAblationQuorumLatency(b *testing.B) {
	for _, commit := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond, 4 * time.Millisecond} {
		b.Run(fmt.Sprintf("commit=%v", commit), func(b *testing.B) {
			n := newBenchNode(b, netsim.Fixed(commit), false)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.Do(ctx, [][]byte{[]byte("SET"), []byte("k"), []byte("v")}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSnapshotFreshness measures restore (resync) cost as a
// function of how much transaction log must be replayed past the latest
// snapshot — the §4.2.3 freshness trade-off.
func BenchmarkAblationSnapshotFreshness(b *testing.B) {
	for _, replay := range []int{0, 1000, 10000} {
		b.Run(fmt.Sprintf("replay=%d", replay), func(b *testing.B) {
			svc := txlog.NewService(txlog.Config{})
			log, _ := svc.CreateLog("fresh")
			mgr := snapshot.NewManager(s3.New(), "snaps")
			eng := engine.New(clock.NewReal())
			ctx := context.Background()
			after := txlog.ZeroID
			appendN := func(n int) {
				for i := 0; i < n; i++ {
					res := eng.Exec([][]byte{[]byte("SET"), []byte(fmt.Sprintf("k%d", i%500)), []byte("value-of-moderate-size")})
					id, err := log.Append(ctx, after, txlog.Entry{Type: txlog.EntryData, Payload: engine.EncodeRecord(res.Effects)})
					if err != nil {
						b.Fatal(err)
					}
					after = id
				}
			}
			appendN(500) // base state
			ob := &snapshot.Offbox{Manager: mgr, EngineVersion: 2}
			if _, err := ob.Run(ctx, "fresh", log); err != nil {
				b.Fatal(err)
			}
			appendN(replay) // staleness
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				restored := engine.New(clock.NewReal())
				db, meta, ok, err := mgr.Latest("fresh")
				if err != nil || !ok {
					b.Fatal(err)
				}
				restored.ResetDB(db)
				if err := snapshot.ReplayRange(ctx, log, restored, meta.LogPos, log.CommittedTail()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNodeOpPath measures the raw single-op path through the node
// workloop (tracker + dispatch + engine), no commit latency — the
// fixed overhead MemoryDB adds over a bare engine call.
func BenchmarkNodeOpPath(b *testing.B) {
	n := newBenchNode(b, netsim.Zero{}, false)
	ctx := context.Background()
	n.Do(ctx, [][]byte{[]byte("SET"), []byte("k"), []byte("v")})
	b.Run("GET", func(b *testing.B) {
		argv := [][]byte{[]byte("GET"), []byte("k")}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n.Do(ctx, argv)
		}
	})
	b.Run("SET", func(b *testing.B) {
		argv := [][]byte{[]byte("SET"), []byte("k"), []byte("v")}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n.Do(ctx, argv)
		}
	})
}

// BenchmarkEngineDispatch measures the bare engine (no node, no log) as
// the baseline for BenchmarkNodeOpPath.
func BenchmarkEngineDispatch(b *testing.B) {
	e := engine.New(clock.NewReal())
	e.Exec([][]byte{[]byte("SET"), []byte("k"), []byte("v")})
	argv := [][]byte{[]byte("GET"), []byte("k")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Exec(argv)
	}
}
