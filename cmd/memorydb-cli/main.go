// Command memorydb-cli is a minimal RESP client: pass a command as
// arguments for one-shot mode, or run with no arguments for a REPL.
//
//	go run ./cmd/memorydb-cli -addr 127.0.0.1:6379 SET k v
//	go run ./cmd/memorydb-cli -addr 127.0.0.1:6379
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"memorydb/internal/resp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6379", "server address")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memorydb-cli: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	w := resp.NewWriter(conn)
	r := resp.NewReader(conn)

	send := func(args []string) bool {
		if err := w.WriteCommandStrings(args...); err != nil {
			fmt.Fprintf(os.Stderr, "write: %v\n", err)
			return false
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "flush: %v\n", err)
			return false
		}
		v, err := r.ReadValue()
		if err != nil {
			fmt.Fprintf(os.Stderr, "read: %v\n", err)
			return false
		}
		fmt.Println(v.String())
		return true
	}

	if args := flag.Args(); len(args) > 0 {
		if !send(args) {
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Printf("%s> ", *addr)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "exit" || line == "quit" {
			return
		}
		if line != "" {
			if !send(strings.Fields(line)) {
				return
			}
		}
		fmt.Printf("%s> ", *addr)
	}
}
