// Command memorydb-bench regenerates every table and figure from the
// paper's evaluation (§6). Each -fig value corresponds to one figure:
//
//	4a  read-only max throughput per instance type (Redis vs MemoryDB)
//	4b  write-only max throughput per instance type
//	5a  read-only latency vs offered throughput (r7g.16xlarge)
//	5b  write-only latency vs offered throughput
//	5c  mixed 80/20 latency vs offered throughput
//	6   Redis BGSave under memory pressure (latency + throughput series)
//	7   MemoryDB off-box snapshotting (flat series)
//	bw  single-shard pipelined write bandwidth (~100 MB/s claim)
//	gc  group-commit ablation (batched vs per-mutation log appends)
//	reads consistent replica reads: read/write throughput vs replica count
//	fork forkless checkpointing vs fork/COW BGSave across dataset sizes
//	all everything above
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"memorydb/internal/bench"
	"memorydb/internal/obs"
)

// benchMeta stamps every BENCH_*.json artifact with enough provenance to
// compare runs: which commit produced it, when, and on how much hardware
// (GOMAXPROCS plus the sharded arm's execution-shard count, which derives
// from it). Rows carry the measurements; meta says what produced them.
type benchMeta struct {
	GitCommit   string `json:"git_commit"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	ShardCount  int    `json:"shard_count"`
}

// gitCommit resolves the producing commit: the VCS stamp embedded by
// `go build` when present, else `git rev-parse HEAD` (covers `go run`
// and `go test` binaries, which skip VCS stamping), else "unknown".
func gitCommit() string {
	if _, commit := obs.BuildID(); commit != "unknown" {
		return commit
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4a 4b 5a 5b 5c 6 7 bw gc reads fork all")
	duration := flag.Duration("duration", 400*time.Millisecond, "measurement window per data point")
	clients := flag.Int("clients", 256, "concurrent client connections")
	prefill := flag.Int("prefill", 5000, "keys pre-filled before measuring")
	jsonDir := flag.String("json-dir", "", "also write each figure's rows (with p50/p95/p99/p999) to <dir>/BENCH_<fig>.json")
	flag.Parse()

	opts := bench.Options{Clients: *clients, Duration: *duration, Prefill: *prefill}
	ctx := context.Background()

	// run executes one figure and returns its machine-readable rows (nil
	// for figures that only produce scalar or sample output).
	run := func(name string) (any, error) {
		switch name {
		case "4a":
			fmt.Println("== Figure 4a: read-only max throughput (op/s) ==")
			return bench.Figure4(ctx, bench.WorkloadReadOnly, opts, os.Stdout)
		case "4b":
			fmt.Println("== Figure 4b: write-only max throughput (op/s) ==")
			return bench.Figure4(ctx, bench.WorkloadWriteOnly, opts, os.Stdout)
		case "5a":
			fmt.Println("== Figure 5a: read-only latency vs offered throughput (r7g.16xlarge) ==")
			return bench.Figure5(ctx, bench.WorkloadReadOnly, opts, os.Stdout)
		case "5b":
			fmt.Println("== Figure 5b: write-only latency vs offered throughput ==")
			return bench.Figure5(ctx, bench.WorkloadWriteOnly, opts, os.Stdout)
		case "5c":
			fmt.Println("== Figure 5c: mixed 80/20 latency vs offered throughput ==")
			return bench.Figure5(ctx, bench.WorkloadMixed8020, opts, os.Stdout)
		case "6":
			fmt.Println("== Figure 6: Redis BGSave under memory pressure ==")
			return bench.Figure6(os.Stdout), nil
		case "7":
			fmt.Println("== Figure 7: MemoryDB off-box snapshotting ==")
			return bench.Figure7(os.Stdout), nil
		case "bw":
			fmt.Println("== §6.1.2.1: single-shard pipelined write bandwidth ==")
			mbps, err := bench.WriteBandwidth(ctx, 4096, 64, *duration*4)
			if err != nil {
				return nil, err
			}
			fmt.Printf("achieved %.1f MB/s (4 KiB values, pipeline depth 64)\n", mbps)
			return map[string]float64{"mb_per_sec": mbps}, nil
		case "gc":
			fmt.Println("== Group commit ablation: write-only throughput, batched vs per-mutation appends ==")
			return bench.FigureGroupCommit(ctx, opts, os.Stdout)
		case "reads":
			fmt.Println("== Consistent replica reads: throughput vs replica count ==")
			return bench.FigureReplicaReads(ctx, opts, os.Stdout)
		case "fork":
			fmt.Println("== Forkless checkpointing vs fork/COW BGSave across dataset sizes ==")
			return bench.FigureForkless(os.Stdout), nil
		default:
			return nil, fmt.Errorf("unknown figure %q", name)
		}
	}

	// jsonName maps -fig values to artifact names; figures without an
	// entry use the raw flag value.
	jsonName := map[string]string{
		"4a": "fig4a", "4b": "fig4b",
		"5a": "fig5a", "5b": "fig5b", "5c": "fig5c",
		"gc": "pipelined", "fork": "fig6",
	}
	meta := benchMeta{
		GitCommit:   gitCommit(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		ShardCount:  bench.ShardedArmShards(),
	}
	writeJSON := func(name string, rows any) error {
		if *jsonDir == "" || rows == nil {
			return nil
		}
		data, err := json.MarshalIndent(struct {
			Meta benchMeta `json:"meta"`
			Rows any       `json:"rows"`
		}{meta, rows}, "", "  ")
		if err != nil {
			return err
		}
		if mapped, ok := jsonName[name]; ok {
			name = mapped
		}
		path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	var names []string
	if *fig == "all" {
		names = []string{"4a", "4b", "5a", "5b", "5c", "6", "7", "bw", "gc", "reads", "fork"}
	} else {
		names = []string{*fig}
	}
	for _, n := range names {
		rows, err := run(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memorydb-bench: %s: %v\n", n, err)
			os.Exit(1)
		}
		if err := writeJSON(n, rows); err != nil {
			fmt.Fprintf(os.Stderr, "memorydb-bench: %s: writing json: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
