// Command memorydb-server runs a single-shard server speaking RESP.
//
// In -mode=memorydb (default) it provisions an in-process multi-AZ
// transaction log service, an S3 simulator for snapshots, and one primary
// node: every write is durably committed across the simulated AZs before
// it is acknowledged. In -mode=redis it runs the same engine as an OSS
// Redis-style node: writes are acknowledged immediately and durability is
// best-effort.
//
// Try it:
//
//	go run ./cmd/memorydb-server -addr 127.0.0.1:6379
//	go run ./cmd/memorydb-cli -addr 127.0.0.1:6379 SET hello world
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"time"

	"memorydb/internal/baseline"
	"memorydb/internal/bench"
	"memorydb/internal/clock"
	"memorydb/internal/core"
	"memorydb/internal/election"
	"memorydb/internal/faultpoint"
	"memorydb/internal/s3"
	"memorydb/internal/server"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6379", "listen address")
	mode := flag.String("mode", "memorydb", "memorydb or redis")
	multiplex := flag.Bool("multiplex", true, "enable Enhanced IO Multiplexing")
	commitLat := flag.Duration("commit-latency", 2*time.Millisecond, "base multi-AZ commit latency")
	flag.Parse()

	var backend server.Backend
	switch *mode {
	case "memorydb":
		svc := txlog.NewService(txlog.Config{
			Clock:         clock.NewReal(),
			CommitLatency: fixedOr(*commitLat),
		})
		logHandle, err := svc.CreateLog("shard-0")
		if err != nil {
			log.Fatalf("create log: %v", err)
		}
		snaps := snapshot.NewManager(s3.New(), "snapshots")
		faults, err := faultRegistryFromEnv()
		if err != nil {
			log.Fatalf("MEMORYDB_FAULTPOINTS: %v", err)
		}
		node, err := core.NewNode(core.Config{
			NodeID:    "node-0",
			ShardID:   "shard-0",
			Log:       logHandle,
			Snapshots: snaps,
			Faults:    faults,
		})
		if err != nil {
			log.Fatalf("create node: %v", err)
		}
		node.Start()
		defer node.Stop()
		for node.Role() != election.RolePrimary {
			time.Sleep(5 * time.Millisecond)
		}
		backend = server.NodeBackend{Node: node}
	case "redis":
		node := baseline.NewPrimary(baseline.Config{NodeID: "redis-0"})
		defer node.Stop()
		backend = server.BaselineBackend{Node: node}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	srv := server.New(server.Config{Addr: *addr, Backend: backend, Multiplex: *multiplex})
	if err := srv.Start(); err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("%s-mode server listening on %s (multiplex=%v)\n", *mode, srv.Addr(), *multiplex)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
}

// faultRegistryFromEnv builds the node's crash-fault registry from the
// MEMORYDB_FAULTPOINTS spec ("site=kind[@N|:prob]" clauses separated by
// ';' — see faultpoint.Parse) seeded by MEMORYDB_CRASH_SEED. Returns nil
// (faults disabled, zero overhead) when the spec is unset.
func faultRegistryFromEnv() (*faultpoint.Registry, error) {
	spec := os.Getenv("MEMORYDB_FAULTPOINTS")
	if spec == "" {
		return nil, nil
	}
	var seed int64 = 1
	if s := os.Getenv("MEMORYDB_CRASH_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("MEMORYDB_CRASH_SEED: %w", err)
		}
		seed = v
	}
	reg, err := faultpoint.Parse(spec, seed)
	if err != nil {
		return nil, err
	}
	fmt.Printf("fault injection armed: %s (seed %d)\n", spec, seed)
	return reg, nil
}

func fixedOr(d time.Duration) interface {
	Sample() time.Duration
} {
	if d <= 0 {
		return bench.DefaultCommitLatency()
	}
	return fixed(d)
}

type fixed time.Duration

func (f fixed) Sample() time.Duration { return time.Duration(f) }
