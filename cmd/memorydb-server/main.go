// Command memorydb-server runs a single-shard server speaking RESP.
//
// In -mode=memorydb (default) it provisions an in-process multi-AZ
// transaction log service, an S3 simulator for snapshots, and one primary
// node: every write is durably committed across the simulated AZs before
// it is acknowledged. In -mode=redis it runs the same engine as an OSS
// Redis-style node: writes are acknowledged immediately and durability is
// best-effort.
//
// Try it:
//
//	go run ./cmd/memorydb-server -addr 127.0.0.1:6379
//	go run ./cmd/memorydb-cli -addr 127.0.0.1:6379 SET hello world
//
// Observability knobs (flags, with env fallbacks):
//
//	-metrics-addr / MEMORYDB_METRICS_ADDR  — serve Prometheus text on
//	    http://<addr>/metrics (empty = disabled)
//	-slowlog-threshold / MEMORYDB_SLOWLOG_THRESHOLD — end-to-end latency
//	    above which a command is recorded in the slowlog
//	-trace-sample / MEMORYDB_TRACE_SAMPLE — fraction of commands traced:
//	    drives both the per-command slowlog tracer and the distributed
//	    span collector behind TRACE GET/RECENT (0 disables sampling;
//	    span collection stays armed so TRACE RESET + live sampling knobs
//	    keep working)
//	-flight-events / MEMORYDB_FLIGHT_EVENTS — per-node flight-recorder
//	    ring size (0 = 512); DEBUG FLIGHT DUMP renders it
//	pprof — when -metrics-addr is set, the standard /debug/pprof/
//	    handlers (profile, heap, goroutine, trace) share its mux
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"time"

	"memorydb/internal/baseline"
	"memorydb/internal/bench"
	"memorydb/internal/clock"
	"memorydb/internal/core"
	"memorydb/internal/election"
	"memorydb/internal/faultpoint"
	"memorydb/internal/obs"
	"memorydb/internal/s3"
	"memorydb/internal/server"
	"memorydb/internal/snapshot"
	"memorydb/internal/trace"
	"memorydb/internal/txlog"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6379", "listen address")
	mode := flag.String("mode", "memorydb", "memorydb or redis")
	multiplex := flag.Bool("multiplex", true, "enable Enhanced IO Multiplexing")
	commitLat := flag.Duration("commit-latency", 2*time.Millisecond, "base multi-AZ commit latency")
	metricsAddr := flag.String("metrics-addr", os.Getenv("MEMORYDB_METRICS_ADDR"),
		"serve Prometheus metrics on this address (empty = disabled)")
	slowlogThresh := flag.Duration("slowlog-threshold", envDuration("MEMORYDB_SLOWLOG_THRESHOLD", 10*time.Millisecond),
		"record commands slower than this in the slowlog")
	traceSample := flag.Float64("trace-sample", envFloat("MEMORYDB_TRACE_SAMPLE", 0),
		"fraction of commands to trace (0 disables sampling)")
	flightEvents := flag.Int("flight-events", envInt("MEMORYDB_FLIGHT_EVENTS", 0),
		"flight-recorder ring size per node (0 = 512)")
	shards := flag.Int("shards", envInt("MEMORYDB_SHARDS", 0),
		"execution shards per node (0 = GOMAXPROCS)")
	segmentBytes := flag.Int("segment-bytes", envInt("MEMORYDB_SEGMENT_BYTES", 0),
		"rotate transaction-log segments at this payload size (0 = 1MiB default)")
	trimInterval := flag.Duration("trim-interval", envDuration("MEMORYDB_TRIM_INTERVAL", 0),
		"run the snapshot scheduler and log trim coordinator at this cadence (0 = disabled)")
	deltaInterval := flag.Int("delta-interval", envInt("MEMORYDB_DELTA_INTERVAL", 0),
		"forkless builder: emit an incremental delta snapshot every N log entries (0 = disabled)")
	compactEvery := flag.Int("compact-every", envInt("MEMORYDB_COMPACT_EVERY", 8),
		"forkless builder: compact the full+delta chain into a new full snapshot after N deltas")
	replicaReadTimeout := flag.Duration("replica-read-timeout", envDuration("MEMORYDB_REPLICA_READ_TIMEOUT", 0),
		"max time a linearizable replica read waits for its freshness proof before degrading (0 = 50ms default)")
	flag.Parse()

	// One shared metrics registry spans the front-end (read_parse,
	// reply_write), the node's workloop and commit pipeline, and the
	// per-AZ log replicas — so /metrics and INFO see the whole path.
	metrics := obs.New(obs.Options{
		SlowlogThreshold: *slowlogThresh,
		TraceSampleRate:  *traceSample,
	})
	// The distributed span collector and the log service's flight ring are
	// shared by every component in the process, so one sampled command's
	// spans — front-end, workloop stages, log quorum acks — assemble into
	// a single tree behind TRACE GET.
	collector := trace.NewCollector(*traceSample, 1, 0)

	var backend server.Backend
	switch *mode {
	case "memorydb":
		svc := txlog.NewService(txlog.Config{
			Clock:         clock.NewReal(),
			CommitLatency: fixedOr(*commitLat),
			SegmentBytes:  *segmentBytes,
			Trace:         collector,
			Flight:        trace.NewFlight("txlog", *flightEvents),
		})
		logHandle, err := svc.CreateLog("shard-0")
		if err != nil {
			log.Fatalf("create log: %v", err)
		}
		for _, az := range svc.AZs() {
			metrics.RegisterHistogram("az_append", fmt.Sprintf("az=%q", az.Name()), az.AckLatency())
		}
		snaps := snapshot.NewManager(s3.New(), "snapshots")
		faults, err := faultRegistryFromEnv()
		if err != nil {
			log.Fatalf("MEMORYDB_FAULTPOINTS: %v", err)
		}
		node, err := core.NewNode(core.Config{
			NodeID:             "node-0",
			ShardID:            "shard-0",
			Log:                logHandle,
			Snapshots:          snaps,
			Faults:             faults,
			Obs:                metrics,
			Shards:             *shards,
			ReplicaReadTimeout: *replicaReadTimeout,
			Trace:              collector,
			FlightEvents:       *flightEvents,
		})
		if err != nil {
			log.Fatalf("create node: %v", err)
		}
		node.Start()
		defer node.Stop()
		for node.Role() != election.RolePrimary {
			time.Sleep(5 * time.Millisecond)
		}
		// Bounded durable log: at -trim-interval cadence, produce off-box
		// snapshots (distance-triggered) and let the trim coordinator drop
		// every sealed segment the newest verified snapshot covers.
		if *trimInterval > 0 {
			sched := &snapshot.Scheduler{
				Policy: snapshot.DefaultPolicy(),
				Offbox: &snapshot.Offbox{Manager: snaps, EngineVersion: 1, Obs: metrics},
			}
			sched.AddShard(snapshot.Shard{ShardID: "shard-0", Log: logHandle})
			trimmer := &snapshot.Trimmer{Manager: snaps, Interval: *trimInterval}
			trimmer.AddShard(snapshot.Shard{ShardID: "shard-0", Log: logHandle})
			done := make(chan struct{})
			defer close(done)
			go func() {
				tick := time.NewTicker(*trimInterval)
				defer tick.Stop()
				for {
					select {
					case <-done:
						return
					case <-tick.C:
						sched.Tick(context.Background())
						trimmer.Tick()
					}
				}
			}()
			fmt.Printf("log trim coordinator running every %v\n", *trimInterval)
		}
		// Forkless snapshots: a log-tailing builder materializes the
		// keyspace off the critical path and streams delta snapshots to
		// S3 — the engine never forks (contrast Figure 6's BGSave
		// collapse). Compaction bounds restore chains at -compact-every.
		if *deltaInterval > 0 {
			builder := &snapshot.Builder{
				Manager: snaps, Log: logHandle, ShardID: "shard-0",
				EngineVersion: 1,
				DeltaInterval: uint64(*deltaInterval),
				CompactEvery:  *compactEvery,
				Obs:           metrics,
				Flight:        node.FlightRecorder(),
			}
			bctx, bcancel := context.WithCancel(context.Background())
			defer bcancel()
			go builder.Run(bctx)
			fmt.Printf("forkless snapshot builder running (delta every %d entries, compact every %d deltas)\n",
				*deltaInterval, *compactEvery)
		}
		backend = server.NodeBackend{Node: node}
	case "redis":
		node := baseline.NewPrimary(baseline.Config{NodeID: "redis-0"})
		defer node.Stop()
		backend = server.BaselineBackend{Node: node}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	srv := server.New(server.Config{Addr: *addr, Backend: backend, Multiplex: *multiplex, Obs: metrics, Trace: collector})
	if err := srv.Start(); err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("%s-mode server listening on %s (multiplex=%v)\n", *mode, srv.Addr(), *multiplex)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(metrics))
		// Standard pprof surface on the same mux: CPU/heap/goroutine
		// profiles and the runtime execution tracer, for production
		// debugging next to the metrics scrape.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		defer msrv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
}

// faultRegistryFromEnv builds the node's crash-fault registry from the
// MEMORYDB_FAULTPOINTS spec ("site=kind[@N|:prob]" clauses separated by
// ';' — see faultpoint.Parse) seeded by MEMORYDB_CRASH_SEED. Returns nil
// (faults disabled, zero overhead) when the spec is unset.
func faultRegistryFromEnv() (*faultpoint.Registry, error) {
	spec := os.Getenv("MEMORYDB_FAULTPOINTS")
	if spec == "" {
		return nil, nil
	}
	var seed int64 = 1
	if s := os.Getenv("MEMORYDB_CRASH_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("MEMORYDB_CRASH_SEED: %w", err)
		}
		seed = v
	}
	reg, err := faultpoint.Parse(spec, seed)
	if err != nil {
		return nil, err
	}
	fmt.Printf("fault injection armed: %s (seed %d)\n", spec, seed)
	return reg, nil
}

func envDuration(key string, def time.Duration) time.Duration {
	s := os.Getenv(key)
	if s == "" {
		return def
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		log.Fatalf("%s: %v", key, err)
	}
	return d
}

func envInt(key string, def int) int {
	s := os.Getenv(key)
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		log.Fatalf("%s: %v", key, err)
	}
	return v
}

func envFloat(key string, def float64) float64 {
	s := os.Getenv(key)
	if s == "" {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		log.Fatalf("%s: %v", key, err)
	}
	return v
}

func fixedOr(d time.Duration) interface {
	Sample() time.Duration
} {
	if d <= 0 {
		return bench.DefaultCommitLatency()
	}
	return fixed(d)
}

type fixed time.Duration

func (f fixed) Sample() time.Duration { return time.Duration(f) }
