// Command memorydb-cluster provisions a local multi-shard MemoryDB
// cluster — shards with primaries and replicas across simulated AZs, a
// shared transaction log service, an S3 simulator, snapshot scheduling,
// and a monitoring service — and exposes it through a single
// cluster-routing RESP endpoint.
//
//	go run ./cmd/memorydb-cluster -shards 3 -replicas 1 -addr 127.0.0.1:6379
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"memorydb/internal/bench"
	"memorydb/internal/clock"
	"memorydb/internal/cluster"
	"memorydb/internal/s3"
	"memorydb/internal/server"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6379", "listen address")
	shards := flag.Int("shards", 3, "number of shards")
	replicas := flag.Int("replicas", 1, "replicas per shard")
	flag.Parse()

	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: bench.DefaultCommitLatency(),
	})
	store := s3.New()
	snaps := snapshot.NewManager(store, "snapshots")

	c, err := cluster.New(cluster.Config{
		Name:             "local",
		NumShards:        *shards,
		ReplicasPerShard: *replicas,
		LogService:       svc,
		Snapshots:        snaps,
	})
	if err != nil {
		log.Fatalf("provision: %v", err)
	}
	defer c.Stop()
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 10*time.Second); err != nil {
			log.Fatalf("bootstrap: %v", err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Background control plane: monitoring + snapshot scheduling.
	mon := &cluster.Monitor{Cluster: c, Interval: 5 * time.Second}
	go mon.Run(ctx)
	sched := &snapshot.Scheduler{
		Policy:   snapshot.DefaultPolicy(),
		Offbox:   &snapshot.Offbox{Manager: snaps, EngineVersion: 2},
		Interval: 10 * time.Second,
		Verify:   true,
	}
	for _, sh := range c.Shards() {
		sched.AddShard(snapshot.Shard{ShardID: sh.ID, Log: sh.Log})
	}
	go sched.Run(ctx)

	srv := server.New(server.Config{Addr: *addr, Backend: server.ClusterBackend{Cluster: c}, Multiplex: true})
	if err := srv.Start(); err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	fmt.Printf("cluster of %d shard(s) × %d replica(s) listening on %s\n", *shards, *replicas, srv.Addr())
	for _, sh := range c.Shards() {
		p, _ := sh.Primary()
		fmt.Printf("  %s: primary=%s slots=%d\n", sh.ID, p.ID(), len(c.OwnedSlots(sh.ID)))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
}
