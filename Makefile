# Tier-1 verification gate: everything a change must pass before merge.
# `make check` = vet + build + full test suite, then a race-detector pass
# over the packages with the most cross-goroutine traffic (the node
# workloop + group commit, the reply tracker, and the transaction log).

GO ?= go

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/tracker/ ./internal/txlog/

# Regenerate the paper figures (long; not part of the tier-1 gate).
bench:
	$(GO) test -run xxx -bench . -benchtime 2x .
