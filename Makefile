# Tier-1 verification gate: everything a change must pass before merge.
# `make check` = vet + build + full test suite, then a race-detector pass
# over the packages with the most cross-goroutine traffic (the node
# workloop + group commit, the reply tracker, and the transaction log).

GO ?= go

.PHONY: check vet build test race bench crash obs shards reads soak forkless

check: vet build test race crash obs shards reads soak forkless

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/tracker/ ./internal/txlog/

# Deterministic crash-fault gate: the kill/restart/zombie schedules must
# reproduce at two pinned seeds under the race detector — every
# registered fault site exercised, zero acknowledged writes lost,
# linearizability clean.
crash:
	MEMORYDB_CRASH_SEED=1 $(GO) test -race -run CrashRestart ./internal/cluster/
	MEMORYDB_CRASH_SEED=2 $(GO) test -race -run CrashRestart ./internal/cluster/

# Metrics-overhead guard: recording with sampling off must stay
# zero-alloc (internal/obs) and within 5% of an uninstrumented node's
# write throughput (internal/core, armed by MEMORYDB_OBS_GUARD=1).
obs:
	MEMORYDB_OBS_GUARD=1 $(GO) test -run TestObsOverheadGuard -count=1 ./internal/obs/ ./internal/core/

# Sharded-execution gate: the core suite and the fixed-seed chaos/crash
# schedules must hold at both one execution shard (the legacy
# single-workloop configuration) and eight, under the race detector,
# followed by the Figure 4b single-vs-sharded throughput comparison
# (scripts/bench_shards.sh enforces the 1.8x bar on >= 4-vCPU runners).
shards:
	MEMORYDB_SHARDS=1 $(GO) test -race ./internal/core/
	MEMORYDB_SHARDS=8 $(GO) test -race ./internal/core/
	MEMORYDB_SHARDS=8 MEMORYDB_CHAOS_SEED=1 $(GO) test -race -run Chaos ./internal/cluster/
	MEMORYDB_SHARDS=8 MEMORYDB_CHAOS_SEED=2 $(GO) test -race -run Chaos ./internal/cluster/
	MEMORYDB_SHARDS=8 MEMORYDB_CRASH_SEED=1 $(GO) test -race -run CrashRestart ./internal/cluster/
	MEMORYDB_SHARDS=8 MEMORYDB_CRASH_SEED=2 $(GO) test -race -run CrashRestart ./internal/cluster/
	sh scripts/bench_shards.sh

# Consistent replica-read gate: the replica-read fault schedules
# (failover storm, bounded-staleness partition, log-trim rebootstrap)
# must hold linearizability — no stale value ever served as
# linearizable, bounded-stale serves within their declared bound — at
# two pinned seeds, at one and eight execution shards, under the race
# detector; then the replica-read throughput figure must show reads
# scaling with the replica count while the primary's write throughput
# holds (scripts/bench_reads.sh, bars enforced on >= 4-vCPU runners).
reads:
	MEMORYDB_SHARDS=1 MEMORYDB_CHAOS_SEED=1 $(GO) test -race -run ReplicaReads ./internal/cluster/
	MEMORYDB_SHARDS=1 MEMORYDB_CHAOS_SEED=2 $(GO) test -race -run ReplicaReads ./internal/cluster/
	MEMORYDB_SHARDS=8 MEMORYDB_CHAOS_SEED=1 $(GO) test -race -run ReplicaReads ./internal/cluster/
	MEMORYDB_SHARDS=8 MEMORYDB_CHAOS_SEED=2 $(GO) test -race -run ReplicaReads ./internal/cluster/
	sh scripts/bench_reads.sh

# Bounded-log soak gate: sustained write load with the snapshot scheduler
# and trim coordinator at their normal cadence must keep live log bytes
# under twice the segment threshold after every maintenance pass — the
# log may never grow without bound.
soak:
	MEMORYDB_SOAK=1 $(GO) test -run TestSoakBoundedLog -count=1 ./internal/cluster/

# Forkless-snapshot gate: the log-tailing builder's crash schedules
# (crash mid-delta, crash mid-compaction, corrupt-delta-in-chain
# fallback, restore from a deep full+delta chain) must restore the exact
# acknowledged state at two pinned seeds, at one and eight execution
# shards, under the race detector — zero trimmed-gap retries, zero
# restore failures through quarantined chains. The snapshot package's
# chain-fallback property test and builder-vs-trimmer race run alongside.
forkless:
	MEMORYDB_SHARDS=1 MEMORYDB_CRASH_SEED=1 $(GO) test -race -run 'SnapshotCrash' ./internal/cluster/
	MEMORYDB_SHARDS=1 MEMORYDB_CRASH_SEED=2 $(GO) test -race -run 'SnapshotCrash' ./internal/cluster/
	MEMORYDB_SHARDS=8 MEMORYDB_CRASH_SEED=1 $(GO) test -race -run 'SnapshotCrash' ./internal/cluster/
	MEMORYDB_SHARDS=8 MEMORYDB_CRASH_SEED=2 $(GO) test -race -run 'SnapshotCrash' ./internal/cluster/
	$(GO) test -race -run 'Builder|ChainFallback' ./internal/snapshot/

# Regenerate the paper figures (long; not part of the tier-1 gate).
bench:
	$(GO) test -run xxx -bench . -benchtime 2x .
