// Quickstart: provision a durable single-shard MemoryDB, write through
// the multi-AZ transaction log, and read back — the minimal end-to-end
// path through the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/core"
	"memorydb/internal/election"
	"memorydb/internal/netsim"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

func main() {
	// 1. The durability substrate: a transaction log service committing
	// every record to three simulated AZs (~2 ms quorum), plus S3 for
	// snapshots.
	logSvc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: netsim.NewLogNormalish(2*time.Millisecond, 500*time.Microsecond, 1),
	})
	shardLog, err := logSvc.CreateLog("quickstart-shard")
	if err != nil {
		log.Fatal(err)
	}
	snaps := snapshot.NewManager(s3.New(), "snapshots")

	// 2. A node: Redis-compatible engine with its replication stream
	// redirected into the log. It bootstraps itself to primary.
	node, err := core.NewNode(core.Config{
		NodeID:    "node-a",
		ShardID:   "quickstart-shard",
		Log:       shardLog,
		Snapshots: snaps,
	})
	if err != nil {
		log.Fatal(err)
	}
	node.Start()
	defer node.Stop()
	for node.Role() != election.RolePrimary {
		time.Sleep(2 * time.Millisecond)
	}

	// 3. Use it like Redis — except every acknowledged write is durable.
	ctx := context.Background()
	do := func(args ...string) {
		argv := make([][]byte, len(args))
		for i, a := range args {
			argv[i] = []byte(a)
		}
		start := time.Now()
		v, err := node.Do(ctx, argv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-44s -> %-28v (%.2f ms)\n", strings.Join(args, " "), v, float64(time.Since(start).Microseconds())/1000)
	}
	do("SET", "greeting", "hello, durable world")
	do("GET", "greeting")
	do("HSET", "user:1", "name", "ada", "score", "42")
	do("HGETALL", "user:1")
	do("ZADD", "board", "42", "ada", "17", "bob")
	do("ZREVRANGE", "board", "0", "-1", "WITHSCORES")

	tail, sum := shardLog.RunningChecksum()
	fmt.Printf("\ntransaction log: %d committed entries, %d AZ copies, running checksum %#x\n",
		tail.Seq, shardLog.AZCopies(), sum)
}
