// Catalog: the e-commerce microservice from the paper's introduction.
// With cache-mode Redis, teams kept the source of truth in a separate
// database and rebuilt the cache after every data-loss event. With
// MemoryDB the catalog lives *in* the store: this example ingests a
// product catalog, crashes the primary mid-traffic, lets a replica take
// over, and shows that every acknowledged item survives — no pipeline,
// no re-hydration job.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"memorydb/internal/bench"
	"memorydb/internal/clock"
	"memorydb/internal/cluster"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

func main() {
	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: bench.DefaultCommitLatency(),
	})
	snaps := snapshot.NewManager(s3.New(), "snapshots")
	c, err := cluster.New(cluster.Config{
		Name: "shop", NumShards: 1, ReplicasPerShard: 1,
		LogService: svc, Snapshots: snaps,
		Lease: 150 * time.Millisecond, Backoff: 200 * time.Millisecond,
		RenewEvery: 40 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	sh := c.Shards()[0]
	if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	cl := c.Client()

	// Ingest the catalog directly: MemoryDB is the primary database.
	fmt.Println("ingesting 200 products...")
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("item:%03d", i)
		if _, err := cl.Do(ctx, "HSET", id,
			"title", fmt.Sprintf("Product %d", i),
			"price", fmt.Sprintf("%d.99", 5+i%40),
			"stock", "100"); err != nil {
			log.Fatal(err)
		}
	}

	// Serve some page views.
	v, err := cl.Do(ctx, "HGETALL", "item:042")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("item:042 -> %v\n", v)

	// Disaster: the primary dies.
	primary, _ := sh.Primary()
	fmt.Printf("\nkilling primary %s mid-traffic...\n", primary.ID())
	primary.Stop()

	// The fully caught-up replica wins the conditional-append election.
	newPrimary, err := sh.WaitForPrimary(c.Clock(), 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica %s promoted (epoch %d)\n", newPrimary.ID(), newPrimary.Epoch())

	// Every acknowledged item is still there — no cache rebuild, no
	// reconciliation job against a second database.
	missing := 0
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("item:%03d", i)
		v, err := cl.Do(ctx, "HGET", id, "title")
		if err != nil || v.Null {
			missing++
		}
	}
	fmt.Printf("catalog after failover: %d/200 items present (%d missing)\n", 200-missing, missing)
	if missing > 0 {
		log.Fatal("acknowledged writes were lost — this should be impossible")
	}
	fmt.Println("zero data loss: the transaction log was the source of truth all along")
}
