// Failover: a side-by-side demonstration of §2.2 — the same write
// workload against (a) an OSS-Redis-mode shard with asynchronous
// replication and ranked failover, and (b) a MemoryDB shard whose writes
// commit to the multi-AZ transaction log before acknowledgement. The
// primary of each is killed mid-stream; the Redis-mode shard loses
// acknowledged writes, MemoryDB loses none.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"memorydb/internal/baseline"
	"memorydb/internal/clock"
	"memorydb/internal/cluster"
	"memorydb/internal/netsim"
	"memorydb/internal/txlog"
)

const writes = 300

func main() {
	ctx := context.Background()

	// --- OSS Redis mode: async replication with a laggy replica. ---
	shard := baseline.NewShard(baseline.Config{
		NodeID:    "redis",
		ReplDelay: netsim.NewUniform(200*time.Microsecond, time.Millisecond, 42),
	}, 2)
	acked := 0
	for i := 0; i < writes; i++ {
		v, err := shard.Primary.Do(ctx, [][]byte{[]byte("SET"), key(i), []byte("v")})
		if err != nil {
			log.Fatal(err)
		}
		if v.Text() == "OK" {
			acked++ // the client was told the write succeeded
		}
		if i%25 == 0 {
			time.Sleep(time.Millisecond) // a trickle of other work; replicas partially catch up
		}
	}
	newPrimary, lostBytes := shard.Failover()
	lost := 0
	for i := 0; i < writes; i++ {
		v, err := newPrimary.Do(ctx, [][]byte{[]byte("GET"), key(i)})
		if err != nil {
			log.Fatal(err)
		}
		if v.Null {
			lost++
		}
	}
	fmt.Printf("OSS Redis mode: %d/%d acknowledged writes survive failover (%d lost, %d bytes of stream unreplicated)\n",
		acked-lost, acked, lost, lostBytes)
	shard.Stop()

	// --- MemoryDB: same workload, same failure. ---
	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: netsim.NewLogNormalish(500*time.Microsecond, 200*time.Microsecond, 7),
	})
	c, err := cluster.New(cluster.Config{
		Name: "mdb", NumShards: 1, ReplicasPerShard: 1, LogService: svc,
		Lease: 150 * time.Millisecond, Backoff: 200 * time.Millisecond,
		RenewEvery: 40 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	sh := c.Shards()[0]
	if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
		log.Fatal(err)
	}
	cl := c.Client()
	for i := 0; i < writes; i++ {
		if _, err := cl.Do(ctx, "SET", string(key(i)), "v"); err != nil {
			log.Fatal(err)
		}
	}
	p, _ := sh.Primary()
	p.Stop()
	if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
		log.Fatal(err)
	}
	lost = 0
	for i := 0; i < writes; i++ {
		v, err := cl.Do(ctx, "GET", string(key(i)))
		if err != nil {
			log.Fatal(err)
		}
		if v.Null {
			lost++
		}
	}
	fmt.Printf("MemoryDB:       %d/%d acknowledged writes survive failover (%d lost)\n",
		writes-lost, writes, lost)
	if lost > 0 {
		log.Fatal("MemoryDB lost acknowledged writes — this should be impossible")
	}
}

func key(i int) []byte {
	return []byte(fmt.Sprintf("order:%04d", i))
}
