// Leaderboard: the paper's motivating real-time aggregation workload — a
// sharded cluster maintains sorted-set leaderboards that concurrent
// writers update while readers pull consistent top-K rankings, with
// every score update durable across AZs before it is acknowledged.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"memorydb/internal/bench"
	"memorydb/internal/clock"
	"memorydb/internal/cluster"
	"memorydb/internal/txlog"
)

func main() {
	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: bench.DefaultCommitLatency(),
	})
	c, err := cluster.New(cluster.Config{
		Name: "game", NumShards: 2, ReplicasPerShard: 1, LogService: svc,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
			log.Fatal(err)
		}
	}

	ctx := context.Background()
	cl := c.Client()

	// 32 concurrent match servers report player scores for 60 ms.
	const players = 50
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			deadline := time.Now().Add(60 * time.Millisecond)
			for time.Now().Before(deadline) {
				player := fmt.Sprintf("player-%02d", rng.Intn(players))
				delta := fmt.Sprintf("%d", rng.Intn(100))
				if _, err := cl.Do(ctx, "ZINCRBY", "leaderboard", delta, player); err != nil {
					log.Fatal(err)
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Top-10, read with strong consistency from the owning primary.
	v, err := cl.Do(ctx, "ZREVRANGE", "leaderboard", "0", "9", "WITHSCORES")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-10 leaderboard (strongly consistent read):")
	for i := 0; i+1 < len(v.Array); i += 2 {
		fmt.Printf("  %2d. %-12s %s\n", i/2+1, v.Array[i].Text(), v.Array[i+1].Text())
	}

	// The same data is also on the replicas via the transaction log —
	// sequentially consistent reads for fan-out traffic.
	ro := c.ReadOnlyClient()
	if v, err := ro.Do(ctx, "ZCARD", "leaderboard"); err == nil {
		fmt.Printf("replica view: %d players tracked\n", v.Int)
	}
	total, err := cl.Do(ctx, "ZCARD", "leaderboard")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary view: %d players tracked\n", total.Int)
}
